"""Unit tests for the retry policy and executor."""

from __future__ import annotations

import random

import pytest

from repro.errors import (
    ConfigurationError,
    RetriesExhausted,
    TransferError,
    ViperError,
)
from repro.obs.metrics import MetricsRegistry
from repro.resilience import RetryPolicy, execute_with_retry
from repro.substrates.cost import Cost


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(attempt_deadline=0.0)

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0
        )
        assert policy.delay_for(1) == pytest.approx(0.1)
        assert policy.delay_for(2) == pytest.approx(0.2)
        assert policy.delay_for(3) == pytest.approx(0.4)
        assert policy.delay_for(4) == pytest.approx(0.5)  # capped
        assert policy.delay_for(10) == pytest.approx(0.5)

    def test_jitter_bounds_and_determinism(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.25)
        draws = [policy.delay_for(1, random.Random(7)) for _ in range(5)]
        assert draws == [draws[0]] * 5  # fresh seeded rng: same draw
        for d in (policy.delay_for(1, random.Random(s)) for s in range(50)):
            assert 0.075 <= d <= 0.125


class TestExecuteWithRetry:
    def test_first_try_success(self):
        outcome = execute_with_retry(lambda: 42, RetryPolicy())
        assert outcome.value == 42
        assert outcome.attempts == 1
        assert outcome.backoff_seconds == 0.0
        assert not outcome.retried

    def test_retry_until_success(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransferError("transient")
            return "ok"

        policy = RetryPolicy(max_attempts=3, jitter=0.0)
        outcome = execute_with_retry(flaky, policy)
        assert outcome.value == "ok"
        assert outcome.attempts == 3
        assert outcome.retried
        assert len(outcome.errors) == 2
        assert outcome.backoff_seconds == pytest.approx(
            policy.delay_for(1) + policy.delay_for(2)
        )

    def test_exhaustion_raises_chained(self):
        def always_fails():
            raise TransferError("permanent")

        with pytest.raises(RetriesExhausted) as exc_info:
            execute_with_retry(
                always_fails, RetryPolicy(max_attempts=2), site="stage.gpu"
            )
        assert exc_info.value.site == "stage.gpu"
        assert exc_info.value.attempts == 2
        assert isinstance(exc_info.value.__cause__, TransferError)

    def test_nested_exhaustion_not_multiplied(self):
        inner_calls = []

        def inner():
            inner_calls.append(1)
            raise TransferError("down")

        def outer():
            execute_with_retry(inner, RetryPolicy(max_attempts=2), site="in")

        with pytest.raises(RetriesExhausted) as exc_info:
            execute_with_retry(outer, RetryPolicy(max_attempts=3), site="out")
        # The inner scope's budget (2) ran once; the outer scope saw
        # RetriesExhausted and re-raised without its own 3 rounds.
        assert len(inner_calls) == 2
        assert exc_info.value.site == "in"

    def test_non_retryable_error_propagates(self):
        def bad():
            raise ValueError("a bug, not a fault")

        with pytest.raises(ValueError):
            execute_with_retry(bad, RetryPolicy())

    def test_custom_retryable_filter(self):
        def fails():
            raise ViperError("generic")

        with pytest.raises(ViperError):
            execute_with_retry(fails, RetryPolicy(), retryable=(TransferError,))

    def test_deadline_turns_slow_success_into_retry(self):
        costs = iter([Cost.of("x", 10.0), Cost.of("x", 0.1)])
        policy = RetryPolicy(max_attempts=2, attempt_deadline=1.0, jitter=0.0)
        outcome = execute_with_retry(lambda: next(costs), policy)
        assert outcome.attempts == 2
        assert outcome.value.total == pytest.approx(0.1)

    def test_deadline_exhaustion(self):
        policy = RetryPolicy(max_attempts=2, attempt_deadline=1.0)
        with pytest.raises(RetriesExhausted):
            execute_with_retry(lambda: Cost.of("x", 10.0), policy)

    def test_cost_fn_override(self):
        policy = RetryPolicy(max_attempts=1, attempt_deadline=1.0)
        # Values without .total are fine; cost_fn supplies the seconds.
        with pytest.raises(RetriesExhausted):
            execute_with_retry(lambda: {"sim": 5.0}, policy,
                               cost_fn=lambda v: v["sim"])

    def test_on_retry_and_metrics(self):
        metrics = MetricsRegistry()
        seen = []
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise TransferError("transient")
            return "ok"

        execute_with_retry(
            flaky,
            RetryPolicy(max_attempts=3),
            site="s",
            metrics=metrics,
            on_retry=lambda site, attempt, err: seen.append((site, attempt)),
        )
        assert seen == [("s", 1)]
        assert metrics.counter("resilience_retries_total", site="s").value == 1


class TestTotalDeadline:
    """Whole-operation budget: attempts + backoff, not just one attempt."""

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(total_deadline=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(attempt_deadline=2.0, total_deadline=1.0)
        RetryPolicy(attempt_deadline=1.0, total_deadline=1.0)  # equal is fine

    def test_success_over_budget_still_exhausts(self):
        # The attempt fits its own deadline but lands past the whole-run
        # budget: the caller already gave up, so success is not returned.
        policy = RetryPolicy(max_attempts=3, total_deadline=1.0, jitter=0.0)
        with pytest.raises(RetriesExhausted) as exc_info:
            execute_with_retry(lambda: Cost.of("x", 2.0), policy, site="s")
        assert exc_info.value.attempts == 1
        assert "total deadline" in str(exc_info.value)
        assert "1 attempt(s)" in str(exc_info.value)
        assert "2.0" in str(exc_info.value)  # elapsed seconds in the detail

    def test_backoff_burn_stops_early(self):
        calls = []

        def always_fails():
            calls.append(1)
            raise TransferError("down")

        # base_delay=1.0 means the first backoff alone exceeds the 0.5s
        # budget: stop after attempt 1 instead of sleeping past it.
        policy = RetryPolicy(
            max_attempts=5, base_delay=1.0, jitter=0.0, total_deadline=0.5
        )
        with pytest.raises(RetriesExhausted) as exc_info:
            execute_with_retry(always_fails, policy, site="s")
        assert len(calls) == 1
        assert exc_info.value.attempts == 1
        assert isinstance(exc_info.value.__cause__, TransferError)

    def test_within_budget_is_untouched(self):
        policy = RetryPolicy(max_attempts=2, total_deadline=100.0, jitter=0.0)
        outcome = execute_with_retry(lambda: Cost.of("x", 1.0), policy)
        assert outcome.attempts == 1
        assert outcome.value.total == pytest.approx(1.0)

    def test_total_exhaustion_counts_in_metrics(self):
        metrics = MetricsRegistry()
        policy = RetryPolicy(max_attempts=3, total_deadline=0.5, jitter=0.0)
        with pytest.raises(RetriesExhausted):
            execute_with_retry(
                lambda: Cost.of("x", 2.0), policy, site="stage.gpu",
                metrics=metrics,
            )
        counter = metrics.counter(
            "resilience_retries_exhausted_total", site="stage.gpu"
        )
        assert counter.value == 1
