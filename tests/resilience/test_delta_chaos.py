"""Chaos suite for the delta wire path.

Same contract as tests/resilience/test_chaos.py — the assertions are
invariants that must hold for ANY ``VIPER_FAULT_SEED``: a reconstruction
that passed verification is bit-exact, a corrupt frame is never swapped
in, and losing the consumer-held base mid-stream degrades to the
monolithic path instead of erroring the update wave.

To replay a CI failure locally::

    VIPER_FAULT_SEED=<seed from the CI log> \\
        python -m pytest tests/resilience/test_delta_chaos.py -q
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CaptureMode,
    FaultKind,
    FaultPlan,
    FaultRule,
    RetryPolicy,
    TransferStrategy,
    Viper,
)
from repro.resilience.faults import default_seed

pytestmark = pytest.mark.chaos

#: Volatile staging tiers misbehave; the PFS stays clean so the failover
#: chain (and the delta path's monolithic fallback) always has a way out.
CHAOS_RULES = [
    FaultRule(site="store.put:*hbm*", kind=FaultKind.WRITE_FAIL,
              probability=0.25),
    FaultRule(site="store.put:*ddr*", kind=FaultKind.WRITE_FAIL,
              probability=0.2),
    FaultRule(site="store.get:*hbm*", kind=FaultKind.CORRUPT,
              probability=0.2),
    FaultRule(site="store.get:*ddr*", kind=FaultKind.CORRUPT,
              probability=0.2),
    FaultRule(site="store.get:*ddr*", kind=FaultKind.DROP,
              probability=0.1),
]

N_ROUNDS = 20


def evolving_states(n, seed=11, tensors=6, shape=(32, 16)):
    """A training run's worth of states, each a partial mutation."""
    rng = np.random.default_rng(seed)
    state = {
        f"t{i}": rng.standard_normal(shape).astype(np.float32)
        for i in range(tensors)
    }
    yield state
    for step in range(1, n):
        state = {k: v.copy() for k, v in state.items()}
        touched = f"t{step % tensors}"
        state[touched] = state[touched] + rng.standard_normal(shape).astype(
            np.float32
        ) * 0.01
        yield state


def test_delta_round_trips_survive_corrupt_and_drop():
    plan = FaultPlan(CHAOS_RULES, seed=default_seed())
    with Viper(delta=True, fault_plan=plan, flush_history=True,
               retry_policy=RetryPolicy(max_attempts=5)) as viper:
        for state in evolving_states(N_ROUNDS):
            viper.save_weights("chaos", state, mode=CaptureMode.SYNC)
            viper.drain()  # PFS mirror lands before the load tries it
            loaded = viper.load_weights("chaos")
            # THE invariant: whatever the fetch path did — retried a
            # corrupt frame, fell back to the monolithic blob, failed
            # over to the PFS replica — the served weights are
            # bit-exact.  A corrupt reconstruction never swaps.
            for key in state:
                np.testing.assert_array_equal(loaded.state[key], state[key])
        snap = viper.handler.stats.snapshot()
        injected_corrupt = plan.injection_count(FaultKind.CORRUPT)
    # Detected corruptions are bounded by injected ones (a corrupt read
    # can also surface as a non-frame parse error before the counter).
    assert snap.corruptions <= injected_corrupt
    # The delta path was actually on the wire this run.
    assert snap.delta_hits > 0
    assert snap.bytes_on_wire < snap.bytes_total


def test_consumer_restarts_under_chaos_degrade_to_monolithic():
    # The consumer loses its held base every few rounds (a restart) while
    # the tiers corrupt reads: every load must still serve exact bytes.
    seed = default_seed()
    plan = FaultPlan(CHAOS_RULES, seed=seed)
    restarts = np.random.default_rng(seed).integers(0, 3, size=N_ROUNDS)
    with Viper(delta=True, fault_plan=plan, flush_history=True,
               retry_policy=RetryPolicy(max_attempts=5)) as viper:
        for i, state in enumerate(evolving_states(N_ROUNDS, seed=13)):
            viper.save_weights("chaos", state, mode=CaptureMode.SYNC)
            viper.drain()
            if restarts[i] == 0:
                viper.handler.delta.forget_held("chaos")
            loaded = viper.load_weights("chaos")
            for key in state:
                np.testing.assert_array_equal(loaded.state[key], state[key])
        snap = viper.handler.stats.snapshot()
    # At least one restart round hit a staged frame without a base and
    # took the fallback, or every such round happened to stage
    # monolithic — either way no error escaped; the counter just records
    # which world this seed drew.
    assert snap.delta_fallbacks >= 0


def test_delta_chaos_is_reproducible_for_the_env_seed():
    seed = default_seed()

    def run():
        plan = FaultPlan(CHAOS_RULES, seed=seed)
        with Viper(delta=True, fault_plan=plan, flush_history=True,
                   retry_policy=RetryPolicy(max_attempts=5)) as viper:
            for state in evolving_states(8, seed=17):
                viper.save_weights("chaos", state, mode=CaptureMode.SYNC)
                viper.drain()
                viper.load_weights("chaos")
            snap = viper.handler.stats.snapshot()
        return (
            snap.retries, snap.failovers, snap.corruptions,
            snap.bytes_on_wire, snap.delta_hits, snap.delta_fallbacks,
            [(i.site, i.op_index, i.kind) for i in plan.injections],
        )

    assert run() == run()
