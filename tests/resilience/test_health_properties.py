"""Property-based tests (hypothesis) for the overload-protection core.

Two components whose invariants everything else leans on:

- :class:`~repro.serving.admission.TokenBucket` — admissions over any
  window never exceed ``rate * window + burst``, a rewinding clock mints
  nothing, and a denied acquire mutates nothing;
- :class:`~repro.resilience.health.LeaseRegistry` — no eviction before a
  full TTL of silence, eviction is idempotent, and a heartbeat always
  renews a live lease.
"""

from __future__ import annotations

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the image
    HAVE_HYPOTHESIS = False

from repro.resilience.health import LeaseRegistry
from repro.serving.admission import TokenBucket

pytestmark = pytest.mark.skipif(
    not HAVE_HYPOTHESIS, reason="hypothesis not installed"
)

# Clock instants: non-negative, finite, coarse enough that float error
# cannot blur the rate bound being asserted.
instants = st.floats(min_value=0.0, max_value=1e4, allow_nan=False,
                     allow_infinity=False)


@settings(max_examples=200, deadline=None)
@given(
    rate=st.floats(min_value=0.1, max_value=100.0),
    burst=st.floats(min_value=1.0, max_value=50.0),
    times=st.lists(instants, min_size=1, max_size=80),
)
def test_token_bucket_never_admits_above_rate_window_plus_burst(
    rate, burst, times
):
    # Arbitrary (possibly rewinding) clock sequence; forward progress is
    # bounded by max(times) - times[0], and rewinds mint nothing, so the
    # admitted count over the whole run can never exceed the envelope.
    bucket = TokenBucket(rate, burst)
    admitted = sum(1 for t in times if bucket.try_acquire(t))
    window = max(max(times) - times[0], 0.0)
    assert admitted <= rate * window + burst + 1e-6


@settings(max_examples=200, deadline=None)
@given(
    rate=st.floats(min_value=0.1, max_value=100.0),
    burst=st.floats(min_value=1.0, max_value=50.0),
    forward=instants,
    rewind=instants,
)
def test_token_bucket_monotone_under_clock_rewind(rate, burst, forward, rewind):
    # After draining at `forward`, a clock reading at or before it must
    # not refill the bucket.
    bucket = TokenBucket(rate, burst)
    while bucket.try_acquire(forward):
        pass
    earlier = min(rewind, forward)
    assert bucket.available(earlier) == pytest.approx(
        bucket.available(forward), abs=1e-9
    )
    assert not bucket.try_acquire(earlier)


@settings(max_examples=200, deadline=None)
@given(
    rate=st.floats(min_value=0.1, max_value=100.0),
    burst=st.floats(min_value=1.0, max_value=50.0),
    now=instants,
    ask=st.floats(min_value=51.0, max_value=1e3),
)
def test_token_bucket_denial_mutates_nothing(rate, burst, now, ask):
    bucket = TokenBucket(rate, burst)
    before = bucket.available(now)
    assert not bucket.try_acquire(now, tokens=ask)  # ask > any burst
    assert bucket.available(now) == before


@settings(max_examples=200, deadline=None)
@given(
    ttl=st.floats(min_value=0.01, max_value=100.0),
    granted=instants,
    beats=st.lists(instants, max_size=20),
    probe=instants,
)
def test_lease_never_evicted_before_ttl_of_silence(ttl, granted, beats, probe):
    reg = LeaseRegistry(ttl)
    reg.grant("m", granted)
    last = granted
    for t in beats:
        reg.heartbeat("m", t)
        last = max(last, t)
    evicted = reg.expire(probe)
    if probe <= last + ttl:
        assert evicted == []
        assert reg.alive("m")
    else:
        assert evicted == ["m"]


@settings(max_examples=200, deadline=None)
@given(
    ttl=st.floats(min_value=0.01, max_value=100.0),
    granted=instants,
    probes=st.lists(instants, min_size=2, max_size=20),
)
def test_lease_eviction_is_idempotent(ttl, granted, probes):
    reg = LeaseRegistry(ttl)
    reg.grant("m", granted)
    total = sum(len(reg.expire(t)) for t in probes)
    assert total <= 1
    assert reg.expirations == total


@settings(max_examples=200, deadline=None)
@given(
    ttl=st.floats(min_value=0.01, max_value=100.0),
    granted=instants,
    beat=instants,
)
def test_heartbeat_always_renews_a_live_lease(ttl, granted, beat):
    reg = LeaseRegistry(ttl)
    reg.grant("m", granted)
    assert reg.heartbeat("m", beat)
    # Renewal is against max(last_beat, beat): no expiry can fire within
    # a TTL of the latest observed instant.  Probe strictly inside the
    # window — (t + ttl) - t can round past ttl for arbitrary floats;
    # the exact boundary is pinned with clean floats in test_health.py.
    horizon = max(granted, beat) + 0.99 * ttl
    assert reg.expire(horizon) == []
    assert reg.alive("m")
