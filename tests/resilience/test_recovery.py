"""Crash-recovery unit tests: journal, media atomicity, flusher shutdown.

The chaos harness (test_crash_restart.py) exercises these pieces
end-to-end under seeded kill points; this file pins down each piece's
contract in isolation so a harness failure bisects quickly.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import ConfigurationError, JournalError, StorageError
from repro.core.metadata import MetadataStore, ModelRecord
from repro.core.transfer.flush import BackgroundFlusher, FlushJob
from repro.resilience.recovery import (
    CrashPlan,
    CrashPoint,
    MetadataJournal,
    SimulatedCrash,
)
from repro.substrates.memory.storage import TierStore
from repro.substrates.memory.tiers import TierKind, TierSpec


def make_record(name="m", version=1, *, durable=False, location="host_dram"):
    return ModelRecord(
        model_name=name,
        version=version,
        nbytes=1000,
        location=location,
        path=f"{name}/v{version}",
        ntensors=2,
        durable=durable,
    )


def make_store(name="t", capacity=10**9):
    spec = TierSpec(
        name=name,
        kind=TierKind.HOST_DRAM,
        capacity_bytes=capacity,
        read_bw=10**6,
        write_bw=10**6,
    )
    return TierStore(spec)


# ---------------------------------------------------------------------------
# Journal: append / replay
# ---------------------------------------------------------------------------

class TestJournalReplay:
    def test_round_trip(self, tmp_path):
        journal = MetadataJournal(tmp_path)
        store = MetadataStore()
        store.attach_journal(journal)
        store.publish_version(make_record(version=1))
        store.publish_version(make_record(version=2))
        store.compare_and_swap(make_record(version=1, durable=True))
        store.drop_version("m", 2)
        journal.close()

        fresh = MetadataStore()
        replayed = MetadataJournal(tmp_path).replay_into(fresh)
        assert replayed == 4
        assert fresh.state_dict() == store.state_dict()
        assert fresh.versions("m") == [1]
        rec, _ = fresh.record("m", 1)
        assert rec.durable

    def test_replay_is_idempotent(self, tmp_path):
        journal = MetadataJournal(tmp_path)
        store = MetadataStore()
        store.attach_journal(journal)
        for v in (1, 2, 3):
            store.publish_version(make_record(version=v))
        store.drop_version("m", 2)

        fresh = MetadataStore()
        journal.replay_into(fresh)
        once = fresh.state_dict()
        journal.replay_into(fresh)
        assert fresh.state_dict() == once == store.state_dict()

    def test_replay_preserves_monotonic_latest(self, tmp_path):
        """Replaying a prefix that ends on an old version must not let a
        later replayed publish regress the latest pointer."""
        journal = MetadataJournal(tmp_path)
        store = MetadataStore()
        store.attach_journal(journal)
        store.publish_version(make_record(version=2))
        store.publish_version(make_record(version=1))  # out-of-order arrival
        fresh = MetadataStore()
        journal.replay_into(fresh)
        rec, _ = fresh.latest("m")
        assert rec.version == 2

    def test_torn_tail_truncated_and_counted(self, tmp_path):
        journal = MetadataJournal(tmp_path)
        store = MetadataStore()
        store.attach_journal(journal)
        store.publish_version(make_record(version=1))
        journal.close()
        # Simulate a crash mid-append: a final line with no newline.
        with open(journal.journal_path, "ab") as fh:
            fh.write(b'{"seq": 2, "op": "publish", "da')

        reopened = MetadataJournal(tmp_path)
        fresh = MetadataStore()
        assert reopened.replay_into(fresh) == 1
        assert reopened.torn_tail_dropped == 1
        assert fresh.versions("m") == [1]
        # The tail was physically truncated: appends splice on cleanly.
        fresh.attach_journal(reopened)
        fresh.publish_version(make_record(version=2))
        final = MetadataStore()
        MetadataJournal(tmp_path).replay_into(final)
        assert final.versions("m") == [1, 2]

    def test_unreadable_snapshot_raises(self, tmp_path):
        journal = MetadataJournal(tmp_path)
        journal.snapshot_path.write_text("{not json")
        with pytest.raises(JournalError, match="unreadable snapshot"):
            journal.replay_into(MetadataStore())


# ---------------------------------------------------------------------------
# Journal: snapshot / compaction
# ---------------------------------------------------------------------------

class TestJournalCompaction:
    def test_compaction_truncates_and_replays_equivalently(self, tmp_path):
        journal = MetadataJournal(tmp_path, compact_every=2)
        store = MetadataStore()
        store.attach_journal(journal)
        for v in (1, 2, 3, 4, 5):
            store.publish_version(make_record(version=v))
        journal.close()
        assert journal.snapshot_path.exists()
        # The journal holds only the post-snapshot tail.
        assert len(MetadataJournal(tmp_path).entries()) < 5

        fresh = MetadataStore()
        MetadataJournal(tmp_path).replay_into(fresh)
        assert fresh.state_dict() == store.state_dict()

    def test_snapshot_covers_triggering_mutation(self, tmp_path):
        """Regression: the compaction a mutation triggers must snapshot
        state that *includes* that mutation — it claims its seq."""
        journal = MetadataJournal(tmp_path, compact_every=1)
        store = MetadataStore()
        store.attach_journal(journal)
        store.publish_version(make_record(version=1))
        journal.close()

        fresh = MetadataStore()
        MetadataJournal(tmp_path).replay_into(fresh)
        assert fresh.versions("m") == [1]

    def test_replay_skips_seqs_the_snapshot_covers(self, tmp_path):
        journal = MetadataJournal(tmp_path)
        store = MetadataStore()
        store.attach_journal(journal)
        store.publish_version(make_record(version=1))
        journal.compact(store.state_dict())
        # Crash between snapshot write and truncation leaves covered
        # entries behind; re-create one and confirm replay skips it.
        with open(journal.journal_path, "a", encoding="utf-8") as fh:
            import json
            fh.write(json.dumps({
                "seq": 1, "op": "publish",
                "data": make_record(version=1).to_dict(),
            }) + "\n")
        journal.close()
        fresh = MetadataStore()
        assert MetadataJournal(tmp_path).replay_into(fresh) == 0
        assert fresh.versions("m") == [1]

    def test_state_dict_is_canonical(self, tmp_path):
        """Record order is (model, version)-sorted, not insertion order,
        so snapshots and recovery comparisons are deterministic."""
        store = MetadataStore()
        store.publish_version(make_record(version=2))
        store.publish_version(make_record(version=1))
        versions = [r["version"] for r in store.state_dict()["records"]]
        assert versions == [1, 2]


# ---------------------------------------------------------------------------
# Media atomicity (TierStore durable mirror)
# ---------------------------------------------------------------------------

class TestMediaAtomicity:
    def test_attach_load_restores_objects(self, tmp_path):
        store = make_store()
        store.attach_media(tmp_path / "media")
        store.put("a", b"alpha", virtual_bytes=100)
        store.put("b", b"beta", virtual_bytes=200)

        reborn = make_store()
        assert reborn.attach_media(tmp_path / "media", load=True) == 2
        assert reborn.get("a")[0] == b"alpha"
        assert reborn.get("b")[0] == b"beta"
        assert reborn.used_bytes == 300

    def test_delete_removes_media(self, tmp_path):
        store = make_store()
        store.attach_media(tmp_path / "media")
        store.put("a", b"alpha", virtual_bytes=100)
        store.delete("a")
        reborn = make_store()
        assert reborn.attach_media(tmp_path / "media", load=True) == 0

    def test_stray_tmp_discarded_on_load(self, tmp_path):
        media = tmp_path / "media"
        media.mkdir()
        # The footprint of a write that died before its atomic rename.
        (media / "torn.tmp").write_bytes(b"half a checkpoint")
        store = make_store()
        assert store.attach_media(media, load=True) == 0
        assert not (media / "torn.tmp").exists()

    def test_crash_before_rename_leaves_no_object(self, tmp_path):
        store = make_store()
        store.attach_media(tmp_path / "media")
        plan = CrashPlan(CrashPoint(site="media.staged:t", at_op=0))
        store.crashpoints = plan
        with pytest.raises(SimulatedCrash):
            store.put("a", b"alpha", virtual_bytes=100)
        reborn = make_store()
        assert reborn.attach_media(tmp_path / "media", load=True) == 0


# ---------------------------------------------------------------------------
# Crash plan semantics
# ---------------------------------------------------------------------------

class TestCrashPlan:
    def test_fires_at_nth_arrival_then_stays_dead(self):
        plan = CrashPlan(CrashPoint(site="flush.start", at_op=2))
        plan.reached("flush.start")
        plan.reached("flush.start")
        with pytest.raises(SimulatedCrash):
            plan.reached("flush.start")
        assert plan.dead
        # Dead-process semantics: every later arrival anywhere dies too.
        with pytest.raises(SimulatedCrash):
            plan.reached("publish.staged")

    def test_site_patterns_match_fnmatch(self):
        plan = CrashPlan(CrashPoint(site="media.staged:*", at_op=0))
        plan.reached("publish.staged")  # non-matching site just counts
        with pytest.raises(SimulatedCrash):
            plan.reached("media.staged:lustre")


# ---------------------------------------------------------------------------
# Flusher shutdown semantics
# ---------------------------------------------------------------------------

def _make_pfs():
    spec = TierSpec(
        name="pfs",
        kind=TierKind.PFS,
        capacity_bytes=10**9,
        read_bw=10**6,
        write_bw=10**6,
    )
    return TierStore(spec)


def _job(version):
    rec = make_record(version=version, location="gpu")
    return FlushJob(key=rec.path, blob=b"ckpt", record=rec)


class TestFlusherShutdown:
    def test_stop_drains_by_default(self):
        """Regression: a clean stop() must never strand queued jobs."""
        pfs, meta = _make_pfs(), MetadataStore()
        gate = threading.Event()

        def hook(job, attempt):
            gate.wait(5)
            return False

        flusher = BackgroundFlusher(pfs, meta, fail_hook=hook).start()
        for v in (1, 2, 3):
            meta.publish_version(_job(v).record)
            flusher.submit(_job(v))
        stopper = threading.Thread(target=flusher.stop)
        stopper.start()
        # stop() is blocked draining behind the gated first job.
        stopper.join(0.1)
        assert stopper.is_alive()
        gate.set()
        stopper.join(10)
        assert not stopper.is_alive()
        assert flusher.flushed_keys == ("m/v1", "m/v2", "m/v3")
        assert flusher.stranded_keys == ()
        for v in (1, 2, 3):
            assert meta.record("m", v)[0].durable

    def test_stop_without_drain_records_stranded(self):
        pfs, meta = _make_pfs(), MetadataStore()
        gate = threading.Event()

        def hook(job, attempt):
            gate.wait(5)
            return False

        flusher = BackgroundFlusher(pfs, meta, fail_hook=hook).start()
        for v in (1, 2):
            meta.publish_version(_job(v).record)
            flusher.submit(_job(v))
        stopper = threading.Thread(
            target=lambda: flusher.stop(drain=False)
        )
        stopper.start()
        while not flusher._abort:  # _abort is set before the join blocks
            gate.wait(0.001)
        gate.set()
        stopper.join(10)
        assert not stopper.is_alive()
        # Job 1 was already in flight and completes; job 2 is abandoned
        # loudly: recorded stranded, its record still non-durable.
        assert flusher.flushed_keys == ("m/v1",)
        assert flusher.stranded_keys == ("m/v2",)
        assert not meta.record("m", 2)[0].durable

    def test_submit_after_stop_raises(self):
        flusher = BackgroundFlusher(_make_pfs(), MetadataStore()).start()
        flusher.stop()
        with pytest.raises(StorageError, match="stranded"):
            flusher.submit(_job(1))


# ---------------------------------------------------------------------------
# Viper-level recovery wiring
# ---------------------------------------------------------------------------

class TestViperRecovery:
    def test_recover_requires_journal(self):
        from repro.core.api import Viper

        with pytest.raises(ConfigurationError, match="journal"):
            Viper(recover=True)

    def test_restart_restores_metadata_and_counts(self, tmp_path):
        import numpy as np

        from repro.core.api import Viper
        from repro.core.transfer.strategies import CaptureMode

        state = {"w": np.ones((4, 4), dtype=np.float32)}
        viper = Viper(flush_history=True, journal=tmp_path / "j")
        viper.save_weights("m", state, mode=CaptureMode.SYNC)
        viper.save_weights("m", state, mode=CaptureMode.SYNC)
        viper.drain()
        viper.close()

        reborn = Viper(
            flush_history=True, journal=tmp_path / "j", recover=True
        )
        try:
            assert reborn.metadata.versions("m") == [1, 2]
            assert reborn.recovery["replayed_ops"] > 0
            assert reborn.recovery["requeued"] == 0
            snap = reborn.handler.stats.snapshot()
            assert snap.recoveries == 1
            assert snap.replayed_ops == reborn.recovery["replayed_ops"]
            # The version clock resumes after the recovered history.
            reborn.save_weights("m", state, mode=CaptureMode.SYNC)
            assert reborn.metadata.versions("m") == [1, 2, 3]
        finally:
            reborn.close()
