"""Overload/liveness chaos: seeded fleet-health invariants under stress.

Every seed runs one fleet through the full robustness gauntlet:

1. an update stream over a fleet where one subscriber **dies** (stops
   heartbeating) and one **stalls** (heartbeats but never drains) — the
   broker must evict both, reclaim their queues, and keep its pending
   memory bounded;
2. a 3x open-loop request **burst** against an admission-armed server —
   every admitted request must finish within its deadline (p99 reported),
   every shed must be counted, and the run must be non-degenerate (some
   served, some shed);
3. a broken read path (every ``store.get`` dropped) while a new version
   publishes — the **degraded** server keeps serving its last-known-good
   weights, trips the load-tier breakers, and absorbs the failures;
4. the bad version is quarantined and a good one publishes — the server
   must **rejoin** cleanly: exit degraded mode through the catch-up
   read, converge to the newest non-quarantined version, and record its
   degraded-mode seconds.

CI runs this with ``VIPER_FAULT_SEED=$GITHUB_RUN_ID`` (shifting the seed
block) and ``VIPER_OVERLOAD_ARTIFACT_DIR`` set, in which case each seed
uploads its shed-decision and lease-event JSONL logs as artifacts.
"""

from __future__ import annotations

import os
import random

import numpy as np
import pytest

from repro import CaptureMode, FaultKind, FaultPlan, FaultRule, Viper
from repro.dnn.layers import Dense
from repro.dnn.losses import MSELoss
from repro.dnn.models import Sequential
from repro.dnn.optimizers import SGD
from repro.errors import OverloadError
from repro.obs.freshness import FreshnessTracker
from repro.obs.metrics import MetricsRegistry
from repro.resilience.breaker import BreakerConfig
from repro.resilience.faults import default_seed
from repro.serving import InferenceServer
from repro.serving.admission import AdmissionConfig

pytestmark = pytest.mark.chaos

ARTIFACT_DIR_ENV = "VIPER_OVERLOAD_ARTIFACT_DIR"

N_SEEDS = 22

# Fleet health knobs.
TTL = 4.0                 # lease TTL (sim seconds)
QUEUE_MAX = 4             # bounded notification queues
SLOW_CYCLES = 3           # high-watermark pushes before eviction
N_STREAM = 8              # update-stream publishes in the liveness phase

# Overload knobs: service capacity 1/T_INFER = 200 req/s; the burst
# arrives open-loop at BURST_FACTOR x that rate.
T_INFER = 0.005
RATE, BURST = 200.0, 8.0
BUDGET = 0.05             # per-request deadline budget (sim seconds)
BURST_FACTOR = 3.0
N_BURST = 120

X = np.ones((1, 2), dtype=np.float32)
Y = np.full((1, 1), 2.0, dtype=np.float32)


def builder():
    model = Sequential([Dense(1, name="d")], input_shape=(2,), seed=3)
    model.compile(SGD(0.01), MSELoss())
    return model


def publish_weights(viper, value):
    state = builder().state_dict()
    state["d/W"][...] = value
    state["d/b"][...] = 0.0
    return viper.save_weights("m", state, mode=CaptureMode.SYNC).version


def make_viper():
    """A deployment with every fleet-health subsystem armed."""
    return Viper(
        metrics=MetricsRegistry(),
        freshness=FreshnessTracker(),
        notify_queue_max=QUEUE_MAX,
        lease_ttl=TTL,
        slow_consumer_cycles=SLOW_CYCLES,
        breaker=BreakerConfig(failure_threshold=2, reset_timeout=0.5),
    )


def run_seed(seed):
    """One full gauntlet; returns the seed's overload measurements."""
    rng = random.Random(seed)
    with make_viper() as viper:
        broker = viper.broker
        healthy = viper.consumer(model_builder=builder, name="healthy")
        healthy.subscribe()
        server = InferenceServer(
            healthy, "m", loss_fn=MSELoss(), t_infer=T_INFER, name="healthy",
            admission=AdmissionConfig(rate=RATE, burst=BURST),
            degraded_ok=True, metrics=viper.metrics,
            # Push-driven updates (refresh drains the subscription); the
            # watchdog deadline is long enough to never fire here.
            staleness_deadline=30.0,
        )
        now0 = viper.handler.sim_now
        stalled_sub = broker.subscribe(viper.topic, member="stalled", now=now0)
        dead_sub = broker.subscribe(viper.topic, member="dead", now=now0)

        # ---- Phase 1: warm-up -----------------------------------------
        v1 = publish_weights(viper, 1.0)
        server.poll_updates()
        assert server.consumer.current_version == v1

        # ---- Phase 2: update stream over a dying fleet ----------------
        for i in range(N_STREAM):
            viper.handler._advance_now(1.0)
            broker.heartbeat("stalled", viper.handler.sim_now)  # never drains
            publish_weights(viper, 1.0 + 0.01 * (i + 1))
            server.advance_clock(viper.handler.sim_now)
            server.poll_updates()                               # heartbeats
            server.handle(X, Y)

        assert dead_sub.evicted and dead_sub.evict_reason == "ttl", (
            f"seed {seed}: dead member not ttl-evicted"
        )
        assert stalled_sub.evicted, f"seed {seed}: stalled member survived"
        assert stalled_sub.evict_reason == "slow_consumer"
        assert not healthy.evicted
        assert broker.evictions == 2
        # Invariant: broker memory is bounded — reclaimed queues are gone
        # and the survivors' queues respect the configured cap.
        pending = broker.pending_total()
        live_subs = broker.subscriber_count(viper.topic)
        assert live_subs == 1
        assert pending <= QUEUE_MAX * live_subs, (
            f"seed {seed}: broker holds {pending} pending notes "
            f"for {live_subs} live subscriber(s)"
        )
        assert broker.reclaimed_messages > 0

        # ---- Phase 3: 3x open-loop burst ------------------------------
        t0 = server.advance_clock(viper.handler.sim_now)
        window = N_BURST / (BURST_FACTOR * RATE)
        arrivals = sorted(t0 + rng.random() * window for _ in range(N_BURST))
        shed_before = server.admission.shed_total
        latencies = []
        sheds = 0
        for arrival in arrivals:
            try:
                _, req = server.handle(
                    X, Y, deadline=arrival + BUDGET, arrival=arrival
                )
                latencies.append(req.sim_time - arrival)
            except OverloadError as exc:
                assert exc.retryable and exc.retry_after >= 0.0
                sheds += 1
        served = len(latencies)
        assert 0 < served < N_BURST, (
            f"seed {seed}: degenerate burst (served {served}/{N_BURST})"
        )
        # Invariant: every shed is counted, in the controller and the
        # deployment-wide stats snapshot.
        assert server.admission.shed_total - shed_before == sheds
        assert viper.stats.snapshot().requests_shed == sheds
        assert sum(server.admission.shed.values()) == sheds
        # Invariant: no admitted request ever finishes past its deadline
        # (the p99 is what the bench reports; the max is the guarantee).
        p99 = float(np.quantile(latencies, 0.99))
        assert max(latencies) <= BUDGET + 1e-9, (
            f"seed {seed}: admitted request finished {max(latencies):.4f}s "
            f"after arrival, budget {BUDGET}s"
        )

        # ---- Phase 4: degraded mode on a broken read path -------------
        lkg = server.consumer.current_version
        plan = FaultPlan(
            [FaultRule(site="store.get:*", kind=FaultKind.DROP,
                       probability=1.0)],
            seed=seed,
        )
        plan.arm(viper.cluster)
        try:
            viper.handler._advance_now(1.0)
            bad = publish_weights(viper, 9.0)
            for _ in range(3):
                server.advance_clock(viper.handler.sim_now)
                server.poll_updates()     # fails -> absorbed -> degraded
                _, req = server.handle(X, Y)
                # Serving never stops: the last-known-good version keeps
                # answering while the update path is down.
                assert req.model_version == lkg
                viper.handler._advance_now(1.0)
        finally:
            plan.disarm()
        assert server.degraded, f"seed {seed}: server never degraded"
        assert server.degraded_entries == 1   # one entry, not one per poll
        assert viper.stats.snapshot().degraded_entries == 1
        assert viper.freshness.is_degraded("healthy", "m")
        assert viper.stats.snapshot().breaker_trips > 0, (
            f"seed {seed}: load-tier breakers never tripped"
        )

        # ---- Phase 5: quarantine the bad version, rejoin --------------
        viper.metadata.quarantine_version("m", bad, "chaos_probe")
        viper.handler._advance_now(2.0)   # past every breaker probe delay
        good = publish_weights(viper, 2.0)
        for _ in range(4):
            server.advance_clock(viper.handler.sim_now)
            server.poll_updates()
            if not server.degraded:
                break
            viper.handler._advance_now(1.0)
        assert not server.degraded, f"seed {seed}: server never rejoined"
        # Zero missed updates: the exit path is the catch-up read, which
        # lands on the newest *non-quarantined* version.
        assert server.consumer.current_version == good, (
            f"seed {seed}: rejoined on v{server.consumer.current_version}, "
            f"newest non-quarantined is v{good}"
        )
        _, req = server.handle(X, Y)
        assert req.model_version == good
        degraded_s = viper.freshness.degraded_seconds("healthy", "m")
        assert degraded_s > 0.0

        _export_artifacts(seed, viper, server)

        return {
            "seed": seed,
            "served": served,
            "shed": sheds,
            "shed_by_reason": dict(server.admission.shed),
            "admitted_p99_s": p99,
            "admitted_max_s": float(max(latencies)),
            "budget_s": BUDGET,
            "broker_pending_peak": pending,
            "reclaimed_messages": broker.reclaimed_messages,
            "evictions": broker.evictions,
            "degraded_seconds": degraded_s,
        }


def _export_artifacts(seed, viper, server):
    dest = os.environ.get(ARTIFACT_DIR_ENV)
    if not dest:
        return
    os.makedirs(dest, exist_ok=True)
    server.admission.write_shed_log(
        os.path.join(dest, f"sheds-seed-{seed}-{server.name}.jsonl")
    )
    viper.broker.health.write_event_log(
        os.path.join(dest, f"leases-seed-{seed}.jsonl")
    )


@pytest.mark.parametrize("offset", range(N_SEEDS))
def test_fleet_survives_overload_and_deaths(offset):
    seed = default_seed() + offset
    run_seed(seed)
