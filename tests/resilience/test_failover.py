"""End-to-end resilience: retry, strategy failover, telemetry, determinism.

These are the acceptance tests for the resilient transfer path: with a
fault plan failing every GPU and HOST staging write, a save/consumer
round-trip must still complete via PFS failover, with the retries and
failover events visible in the telemetry snapshot — and the whole run
must be reproducible for a fixed seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CaptureMode,
    FaultKind,
    FaultPlan,
    FaultRule,
    RetryPolicy,
    TransferStrategy,
    Viper,
)
from repro.core.transfer.selector import TransferSelector
from repro.core.transfer.strategies import FAILOVER_ORDER, failover_chain
from repro.errors import RetriesExhausted
from repro.obs.metrics import MetricsRegistry

STATE = {"w": np.arange(256, dtype=np.float32).reshape(16, 16)}

GPU_HOST_DOWN = [
    FaultRule(site="store.put:*hbm*", kind=FaultKind.WRITE_FAIL,
              probability=1.0),
    FaultRule(site="store.put:*ddr*", kind=FaultKind.WRITE_FAIL,
              probability=1.0),
]


def make_viper(rules, seed=7, **kwargs):
    return Viper(
        fault_plan=FaultPlan(rules, seed=seed),
        metrics=kwargs.pop("metrics", MetricsRegistry()),
        **kwargs,
    )


class TestFailoverChain:
    def test_order_matches_paper(self):
        assert FAILOVER_ORDER == (
            TransferStrategy.GPU_TO_GPU,
            TransferStrategy.HOST_TO_HOST,
            TransferStrategy.PFS,
        )

    def test_chain_only_demotes(self):
        assert failover_chain(TransferStrategy.HOST_TO_HOST) == (
            TransferStrategy.HOST_TO_HOST,
            TransferStrategy.PFS,
        )
        assert failover_chain(TransferStrategy.PFS) == (TransferStrategy.PFS,)

    def test_selector_chain_defaults_to_selection(self):
        selector = TransferSelector(
            gpu_direct_available=True,
            gpu_staging_budget=10_000,
            host_staging_budget=10_000,
        )
        assert selector.chain(100)[0] is TransferStrategy.GPU_TO_GPU
        assert selector.chain(100)[-1] is TransferStrategy.PFS
        # A forced selector still fails over past its pin.
        forced = TransferSelector(forced=TransferStrategy.HOST_TO_HOST)
        assert forced.chain(100) == (
            TransferStrategy.HOST_TO_HOST,
            TransferStrategy.PFS,
        )


class TestEndToEndFailover:
    def test_sync_round_trip_survives_gpu_and_host_down(self):
        with make_viper(GPU_HOST_DOWN) as viper:
            result = viper.save_weights("m", STATE, mode=CaptureMode.SYNC)
            assert result.strategy is TransferStrategy.PFS
            assert result.record.location == "pfs"
            assert result.record.durable
            loaded = viper.load_weights("m")
            assert loaded.location == "pfs"
            np.testing.assert_array_equal(loaded.state["w"], STATE["w"])

    def test_async_round_trip_survives_gpu_and_host_down(self):
        with make_viper(GPU_HOST_DOWN) as viper:
            viper.save_weights("m", STATE)  # async
            viper.drain()
            record, _ = viper.metadata.latest("m")
            assert record.location == "pfs"  # published record is accurate
            loaded = viper.load_weights("m")
            assert loaded.location == "pfs"
            np.testing.assert_array_equal(loaded.state["w"], STATE["w"])

    def test_pfs_failover_reverts_delta_wire_accounting(self):
        # Regression: record_wire runs optimistically at encode time;
        # when staging fails over into the PFS the monolithic blob
        # actually ships, so the recorded dedup/compression savings
        # must be undone in the stats counters too (the record's
        # wire_bytes already reverted).
        rng = np.random.default_rng(3)
        v1 = {f"t{i}": rng.standard_normal((64, 32)).astype(np.float32)
              for i in range(8)}
        v2 = {k: v.copy() for k, v in v1.items()}
        v2["t0"] = v2["t0"] + 1.0
        with make_viper(GPU_HOST_DOWN, delta=True) as viper:
            viper.save_weights("m", v1, mode=CaptureMode.SYNC,
                               strategy=TransferStrategy.HOST_TO_HOST)
            viper.load_weights("m")  # registers the held base
            result = viper.save_weights(
                "m", v2, mode=CaptureMode.SYNC,
                strategy=TransferStrategy.HOST_TO_HOST,
            )
            assert result.strategy is TransferStrategy.PFS
            assert result.record.wire_bytes == 0
            snap = viper.handler.stats.snapshot()
        assert snap.bytes_on_wire == snap.bytes_total
        assert snap.bytes_saved_dedup == 0
        assert snap.bytes_saved_compression == 0
        assert snap.delta_hits == 0
        assert snap.delta_fallbacks >= 1

    def test_telemetry_snapshot_shows_retries_and_failovers(self):
        metrics = MetricsRegistry()
        with make_viper(GPU_HOST_DOWN, metrics=metrics) as viper:
            viper.save_weights("m", STATE, mode=CaptureMode.SYNC)
            snap = viper.handler.stats.snapshot()
        # Default policy: 3 attempts per strategy -> 2 retries recorded
        # at gpu + 2 at host, one failover per demotion.
        assert snap.retries == 4
        assert snap.failovers == 2
        assert metrics.counter(
            "viper_failovers_total", src="gpu", dst="host"
        ).value == 1
        assert metrics.counter(
            "viper_failovers_total", src="host", dst="pfs"
        ).value == 1
        assert metrics.counter("viper_retries_total", site="stage.gpu").value == 2
        assert "retries: 4, failovers: 2" in viper.handler.stats.summary()

    def test_failover_disabled_raises(self):
        with make_viper(GPU_HOST_DOWN, failover=False) as viper:
            with pytest.raises(RetriesExhausted) as exc_info:
                viper.save_weights("m", STATE, mode=CaptureMode.SYNC)
            assert exc_info.value.site == "stage.gpu"

    def test_async_failure_surfaces_on_drain(self):
        rules = GPU_HOST_DOWN + [
            FaultRule(site="store.put:*lustre*", kind=FaultKind.WRITE_FAIL,
                      probability=1.0),
        ]
        with make_viper(rules) as viper:
            viper.save_weights("m", STATE)
            with pytest.raises(Exception) as exc_info:
                viper.drain()
            assert isinstance(
                exc_info.value.__cause__, RetriesExhausted
            ) or isinstance(exc_info.value, RetriesExhausted)

    def test_transient_fault_recovers_on_same_strategy(self):
        # First GPU put drops; the retry succeeds without failover.
        rules = [
            FaultRule(site="store.put:*hbm*", kind=FaultKind.WRITE_FAIL,
                      at_ops=(0,)),
        ]
        with make_viper(rules) as viper:
            result = viper.save_weights("m", STATE, mode=CaptureMode.SYNC)
            snap = viper.handler.stats.snapshot()
            assert result.strategy is TransferStrategy.GPU_TO_GPU
            assert snap.retries == 1
            assert snap.failovers == 0

    def test_backoff_charged_as_simulated_time(self):
        with make_viper(GPU_HOST_DOWN) as viper:
            result = viper.save_weights("m", STATE, mode=CaptureMode.SYNC)
            assert "retry.backoff" in result.background.breakdown()

    def test_custom_retry_policy_attempt_budget(self):
        policy = RetryPolicy(max_attempts=5, jitter=0.0)
        with make_viper(GPU_HOST_DOWN, retry_policy=policy) as viper:
            viper.save_weights("m", STATE, mode=CaptureMode.SYNC)
            snap = viper.handler.stats.snapshot()
        assert snap.retries == 8  # 4 per failed strategy
        assert snap.failovers == 2


class TestDeterminism:
    def run_workload(self, seed):
        rules = [
            FaultRule(site="store.put:*hbm*", kind=FaultKind.WRITE_FAIL,
                      probability=0.5),
            FaultRule(site="store.put:*ddr*", kind=FaultKind.WRITE_FAIL,
                      probability=0.3),
        ]
        plan = FaultPlan(rules, seed=seed)
        with Viper(fault_plan=plan) as viper:
            for i in range(10):
                viper.save_weights("m", STATE, mode=CaptureMode.SYNC)
                viper.load_weights("m")
            snap = viper.handler.stats.snapshot()
        injections = [(i.site, i.op_index, i.kind) for i in plan.injections]
        return snap.retries, snap.failovers, injections

    def test_same_seed_same_counts(self):
        assert self.run_workload(7) == self.run_workload(7)

    def test_different_seed_different_injections(self):
        assert self.run_workload(7)[2] != self.run_workload(1234)[2]


class TestZeroOverheadWhenDisarmed:
    def test_no_hooks_installed_by_default(self):
        with Viper() as viper:
            assert viper.handler.cluster.fabric.faults is None
            assert viper.handler.cluster.pfs.faults is None
            assert viper.handler.consumer.gpu.faults is None

    def test_close_disarms_the_plan(self):
        plan = FaultPlan(GPU_HOST_DOWN, seed=7)
        viper = Viper(fault_plan=plan)
        cluster = viper.cluster
        assert cluster.pfs.faults is plan
        viper.close()
        assert cluster.pfs.faults is None
        assert cluster.fabric.faults is None
