"""Lease/heartbeat membership: the registry and its broker integration.

The registry's contract: no eviction before a full TTL of silence,
heartbeats always renew, eviction is idempotent, and an evicted member
re-joins only through a re-grant (resubscribe), never a silent
heartbeat resurrection.  The broker integration adds the consequences:
a dead subscriber's queue is reclaimed, a slow consumer is escalated
from coalescing to eviction, and a returning member is flagged for one
catch-up read.
"""

from __future__ import annotations

import json

import pytest

from repro.core.notification import NotificationBroker
from repro.errors import ConfigurationError, NotificationError
from repro.obs.metrics import MetricsRegistry
from repro.resilience.health import LeaseRegistry

TTL = 1.0


class TestLeaseRegistry:
    def test_ttl_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            LeaseRegistry(0.0)

    def test_grant_and_alive(self):
        reg = LeaseRegistry(TTL)
        lease = reg.grant("a", 0.0)
        assert reg.alive("a")
        assert lease.remaining(0.0) == TTL
        assert reg.members() == ("a",)

    def test_no_eviction_before_ttl(self):
        reg = LeaseRegistry(TTL)
        reg.grant("a", 0.0)
        assert reg.expire(TTL) == []          # exactly TTL of silence: alive
        assert reg.expire(TTL + 0.01) == ["a"]

    def test_heartbeat_renews(self):
        reg = LeaseRegistry(TTL)
        reg.grant("a", 0.0)
        assert reg.heartbeat("a", 0.9)
        assert reg.expire(1.5) == []          # renewed at 0.9, good to 1.9
        assert reg.expire(2.0) == ["a"]

    def test_expire_is_idempotent(self):
        reg = LeaseRegistry(TTL)
        reg.grant("a", 0.0)
        assert reg.expire(2.0) == ["a"]
        assert reg.expire(2.0) == []
        assert reg.expire(5.0) == []
        assert reg.expirations == 1

    def test_heartbeat_cannot_resurrect_expired_lease(self):
        reg = LeaseRegistry(TTL)
        reg.grant("a", 0.0)
        reg.expire(2.0)
        assert not reg.heartbeat("a", 2.1)
        assert not reg.alive("a")

    def test_regrant_revives_and_is_recorded(self):
        reg = LeaseRegistry(TTL)
        reg.grant("a", 0.0)
        reg.expire(2.0)
        reg.grant("a", 2.5)
        assert reg.alive("a")
        assert [e["event"] for e in reg.events] == ["grant", "expire", "regrant"]

    def test_rewinding_clock_never_expires_early(self):
        reg = LeaseRegistry(TTL)
        reg.grant("a", 0.0)
        reg.heartbeat("a", 5.0)
        assert not reg.heartbeat("a", 1.0) or reg.lease("a").last_beat == 5.0
        assert reg.expire(5.5) == []  # expiry measured from the *latest* beat

    def test_forced_evict_and_reason(self):
        reg = LeaseRegistry(TTL)
        reg.grant("a", 0.0)
        assert reg.evict("a", 0.5, "slow_consumer")
        assert not reg.evict("a", 0.5, "slow_consumer")  # idempotent
        assert reg.lease("a").expire_reason == "slow_consumer"

    def test_release_is_not_an_expiry(self):
        reg = LeaseRegistry(TTL)
        reg.grant("a", 0.0)
        assert reg.release("a", 0.5)
        assert not reg.release("a", 0.5)
        assert reg.expirations == 0
        assert reg.members() == ()

    def test_on_expire_callback_and_counters(self):
        metrics = MetricsRegistry()
        seen = []
        reg = LeaseRegistry(
            TTL, metrics=metrics, on_expire=lambda m, r: seen.append((m, r))
        )
        reg.grant("a", 0.0)
        reg.grant("b", 0.0)
        reg.heartbeat("b", 1.5)
        reg.expire(1.6)
        assert seen == [("a", "ttl")]
        assert metrics.counter("viper_leases_expired_total", reason="ttl").value == 1

    def test_event_log_is_jsonl(self, tmp_path):
        reg = LeaseRegistry(TTL)
        reg.grant("a", 0.0)
        reg.expire(2.0)
        path = tmp_path / "leases.jsonl"
        assert reg.write_event_log(path) == 2
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert events[0]["event"] == "grant"
        assert events[1]["event"] == "expire"
        assert events[1]["reason"] == "ttl"


class TestBrokerLeases:
    def make_broker(self, **kwargs):
        kwargs.setdefault("lease_ttl", TTL)
        return NotificationBroker(metrics=MetricsRegistry(), **kwargs)

    def publish(self, broker, n, start=0.0, step=0.1):
        for i in range(n):
            broker.publish(
                "t", model_name="m", version=i + 1, location="gpu",
                now=start + i * step,
            )

    def test_subscribe_grants_a_lease(self):
        broker = self.make_broker()
        broker.subscribe("t", member="c0", now=0.0)
        assert broker.health.alive("c0")

    def test_anonymous_subscriber_never_lease_evicted(self):
        broker = self.make_broker()
        sub = broker.subscribe("t")
        self.publish(broker, 1, start=100.0)
        assert not sub.evicted
        assert sub.pending == 1

    def test_dead_member_evicted_and_queue_reclaimed(self):
        broker = self.make_broker(queue_max=8)
        sub = broker.subscribe("t", member="c0", now=0.0)
        self.publish(broker, 3)
        assert sub.pending == 3
        # Silence past the TTL; the next publish sweeps the table.
        self.publish(broker, 1, start=5.0)
        assert sub.evicted
        assert sub.evict_reason == "ttl"
        assert sub.needs_catchup
        assert sub.pending == 0              # queue memory reclaimed
        assert sub.closed
        assert broker.subscriber_count("t") == 0
        assert broker.evictions == 1
        assert broker.reclaimed_messages >= 3
        assert broker.pending_total() == 0

    def test_heartbeating_member_survives(self):
        broker = self.make_broker()
        sub = broker.subscribe("t", member="c0", now=0.0)
        for i in range(10):
            t = i * 0.8
            assert broker.heartbeat("c0", t)
            self.publish(broker, 1, start=t)
        assert not sub.evicted

    def test_evicted_member_revives_via_resubscribe_with_catchup(self):
        broker = self.make_broker()
        sub = broker.subscribe("t", member="c0", now=0.0)
        self.publish(broker, 2)
        while sub.poll() is not None:
            pass
        last = sub.last_seq
        self.publish(broker, 2, start=5.0)   # evicts c0, then publishes
        assert sub.evicted
        sub2 = broker.resubscribe("t", last, member="c0", now=6.0)
        assert broker.health.alive("c0")
        assert sub2.needs_catchup            # missed publishes -> one read
        # The retained (newest) note is re-delivered to converge fast.
        assert sub2.pending == 1

    def test_slow_consumer_escalates_to_eviction(self):
        broker = self.make_broker(queue_max=2, slow_consumer_cycles=3)
        sub = broker.subscribe("t", member="c0", now=0.0)
        stalled = broker.subscribe("t", member="c1", now=0.0)
        for i in range(8):
            t = i * 0.1
            broker.heartbeat("c0", t)
            broker.heartbeat("c1", t)        # alive, but never drains
            self.publish(broker, 1, start=t)
            sub.poll()                       # c0 keeps up
        assert not sub.evicted
        assert stalled.evicted
        assert stalled.evict_reason == "slow_consumer"
        assert broker.health.lease("c1").expire_reason == "slow_consumer"

    def test_slow_consumer_requires_bounded_queue(self):
        with pytest.raises(NotificationError):
            NotificationBroker(slow_consumer_cycles=2)

    def test_unsubscribe_releases_the_lease(self):
        broker = self.make_broker()
        sub = broker.subscribe("t", member="c0", now=0.0)
        broker.unsubscribe(sub)
        assert not broker.health.alive("c0")
        assert broker.health.expirations == 0  # voluntary, not an expiry

    def test_leases_off_by_default(self):
        broker = NotificationBroker()
        assert broker.health is None
        assert broker.heartbeat("c0", 0.0) is False
        assert broker.expire_leases(0.0) == []
