"""Integrity: checksum verification, corruption detection, re-request.

Injected payload corruption must always be detected — a corrupted
checkpoint must never be deserialized into a served model — and detection
must trigger a re-request (same replica for transient corruption, the
next replica when a stored copy is permanently damaged).
"""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro import CaptureMode, FaultKind, FaultPlan, FaultRule, Viper
from repro.dnn.serialization import H5LikeSerializer, ViperSerializer
from repro.errors import IntegrityError, RetriesExhausted, StorageError

STATE = {
    "w": np.arange(512, dtype=np.float32).reshape(16, 32),
    "b": np.ones(16, dtype=np.float64),
}


class TestChecksumFormat:
    def test_round_trip(self):
        ser = ViperSerializer()
        blob = ser.dumps(STATE)
        out = ser.loads(blob)
        for key in STATE:
            np.testing.assert_array_equal(out[key], STATE[key])

    def test_dump_chunks_matches_dumps(self):
        ser = ViperSerializer()
        assert b"".join(ser.dump_chunks(STATE)) == ser.dumps(STATE)

    @pytest.mark.parametrize("copy", [True, False])
    def test_any_flipped_payload_byte_is_detected(self, copy):
        ser = ViperSerializer()
        blob = bytearray(ser.dumps(STATE))
        payload_start = 12  # VIPR | version | crc32
        for pos in range(payload_start, len(blob), 97):
            bad = bytearray(blob)
            bad[pos] ^= 0x01
            with pytest.raises(IntegrityError) as exc_info:
                ser.loads(bytes(bad), copy=copy)
            assert exc_info.value.expected != exc_info.value.actual

    def test_corrupt_checksum_field_is_detected(self):
        ser = ViperSerializer()
        blob = bytearray(ser.dumps(STATE))
        blob[8] ^= 0xFF
        with pytest.raises(IntegrityError):
            ser.loads(bytes(blob))

    def test_load_chunks_verifies(self):
        ser = ViperSerializer()
        chunks = [bytes(c) for c in ser.dump_chunks(STATE)]
        chunks[-1] = chunks[-1][:-1] + bytes([chunks[-1][-1] ^ 0x01])
        with pytest.raises(IntegrityError):
            ser.load_chunks(chunks)

    def test_v1_blob_loads_unverified(self):
        ser = ViperSerializer()
        blob = ser.dumps(STATE)
        legacy = b"VIPR" + struct.pack("<I", 1) + blob[12:]
        out = ser.loads(legacy)
        np.testing.assert_array_equal(out["w"], STATE["w"])

    def test_unknown_version_rejected(self):
        ser = ViperSerializer()
        blob = bytearray(ser.dumps(STATE))
        struct.pack_into("<I", blob, 4, 99)
        with pytest.raises(StorageError, match="version"):
            ser.loads(bytes(blob))

    def test_h5_baseline_remains_checksum_free(self):
        # The h5py-like baseline stays faithful to what h5py does: no
        # integrity envelope, corruption passes through undetected here.
        ser = H5LikeSerializer()
        blob = bytearray(ser.dumps(STATE))
        blob[-1] ^= 0x01
        state = ser.loads(bytes(blob))
        assert set(state) == set(STATE)


class TestEndToEndCorruption:
    def test_transient_read_corruption_is_retried(self):
        # Corrupt the first GPU read only: the re-request serves clean
        # bytes from the same replica.
        plan = FaultPlan(
            [FaultRule(site="store.get:*hbm*", kind=FaultKind.CORRUPT,
                       at_ops=(0,))],
            seed=7,
        )
        with Viper(fault_plan=plan) as viper:
            viper.save_weights("m", STATE, mode=CaptureMode.SYNC)
            loaded = viper.load_weights("m")
            snap = viper.handler.stats.snapshot()
            assert loaded.location == "gpu"
            np.testing.assert_array_equal(loaded.state["w"], STATE["w"])
            assert snap.corruptions == 1
            assert snap.retries == 1
            assert "retry.backoff" in loaded.cost.breakdown()

    def test_permanently_corrupt_replica_falls_back_to_pfs(self):
        # Corruption injected at PUT time damages the stored GPU copy for
        # good; every read retries, exhausts, and the load must fall back
        # to the durable PFS replica written by the history flusher.
        plan = FaultPlan(
            [FaultRule(site="store.put:*hbm*", kind=FaultKind.CORRUPT,
                       at_ops=(0,))],
            seed=7,
        )
        with Viper(fault_plan=plan, flush_history=True) as viper:
            viper.save_weights("m", STATE, mode=CaptureMode.SYNC)
            viper.drain()  # let the flusher mirror the blob to the PFS
            loaded = viper.load_weights("m")
            snap = viper.handler.stats.snapshot()
            assert loaded.location == "pfs"
            np.testing.assert_array_equal(loaded.state["w"], STATE["w"])
            assert snap.corruptions == viper.handler.retry_policy.max_attempts
            assert snap.fallbacks == 1

    def test_corruption_never_served(self):
        # Even when every replica is permanently corrupt, the consumer
        # gets a typed error — never a garbage model.
        plan = FaultPlan(
            [FaultRule(site="store.put:*", kind=FaultKind.CORRUPT,
                       probability=1.0)],
            seed=7,
        )
        with Viper(fault_plan=plan) as viper:
            viper.save_weights("m", STATE, mode=CaptureMode.SYNC)
            with pytest.raises(RetriesExhausted) as exc_info:
                viper.load_weights("m")
            assert isinstance(exc_info.value.__cause__, IntegrityError)
            snap = viper.handler.stats.snapshot()
            assert snap.corruptions == viper.handler.retry_policy.max_attempts

    def test_corruption_metrics(self):
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        plan = FaultPlan(
            [FaultRule(site="store.get:*hbm*", kind=FaultKind.CORRUPT,
                       at_ops=(0,))],
            seed=7,
        )
        with Viper(fault_plan=plan, metrics=metrics) as viper:
            viper.save_weights("m", STATE, mode=CaptureMode.SYNC)
            viper.load_weights("m")
        assert metrics.counter(
            "viper_corruptions_total", location="gpu"
        ).value == 1
        assert metrics.counter(
            "resilience_faults_injected_total",
            site="store.get:polaris.a100-hbm",
            kind="corrupt",
        ).value == 1

    def test_pipelined_zero_copy_load_verifies(self):
        from repro.core.transfer.pipeline import PipelineConfig

        plan = FaultPlan(
            [FaultRule(site="store.get:*hbm*", kind=FaultKind.CORRUPT,
                       at_ops=(0,))],
            seed=7,
        )
        pipeline = PipelineConfig(enabled=True)
        with Viper(fault_plan=plan, pipeline=pipeline) as viper:
            viper.save_weights("m", STATE, mode=CaptureMode.SYNC)
            loaded = viper.load_weights("m")
            # Zero-copy consumers get read-only views — and still only
            # after the checksum over the whole buffer passed.
            assert not loaded.state["w"].flags.writeable
            np.testing.assert_array_equal(loaded.state["w"], STATE["w"])
            assert viper.handler.stats.snapshot().corruptions == 1
