"""JSON export tests."""

import json

import pytest

from repro.errors import WorkflowError
from repro.analysis.export import SCHEMA_VERSION, export_json, workflow_result_to_dict
from repro.core.predictor.schedules import epoch_schedule
from repro.core.transfer.strategies import CaptureMode, TransferStrategy
from repro.workflow.runner import CoupledRunConfig, run_coupled
from tests.conftest import exp3_curve


@pytest.fixture
def result(mini_app):
    schedule = epoch_schedule(
        mini_app.warmup_iters, mini_app.total_iters, mini_app.iters_per_epoch
    )
    return run_coupled(
        CoupledRunConfig(
            app=mini_app,
            schedule=schedule,
            loss_curve=exp3_curve(mini_app.total_iters, a=3.0, b=0.05, c=0.2),
            strategy=TransferStrategy.GPU_TO_GPU,
            mode=CaptureMode.ASYNC,
        )
    )


class TestExport:
    def test_workflow_result_roundtrips_through_json(self, result):
        doc = workflow_result_to_dict(result)
        again = json.loads(json.dumps(doc))
        assert again["cil"] == pytest.approx(result.cil)
        assert again["checkpoints"] == result.checkpoints
        assert len(again["switches"]) == len(result.switches)
        assert sum(again["per_version_inferences"]) == result.inferences

    def test_export_json_writes_document(self, result, tmp_path):
        path = export_json(
            tmp_path / "fig10" / "tc1.json",
            "fig10-tc1",
            {"baseline": result},
            extra={"seed": 3},
        )
        doc = json.loads(path.read_text())
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["experiment"] == "fig10-tc1"
        assert doc["results"]["baseline"]["inferences"] == result.inferences
        assert doc["extra"]["seed"] == 3

    def test_nested_structures_converted(self, result, tmp_path):
        path = export_json(
            tmp_path / "out.json",
            "nested",
            {"runs": [result, result], "labels": ("a", "b")},
        )
        doc = json.loads(path.read_text())
        assert len(doc["results"]["runs"]) == 2
        assert doc["results"]["labels"] == ["a", "b"]

    def test_empty_experiment_rejected(self, tmp_path):
        with pytest.raises(WorkflowError):
            export_json(tmp_path / "x.json", "", {})
