"""Checkpoint Frequency Adapter: online threshold adaptation."""

import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.core.predictor.adapter import CheckpointFrequencyAdapter
from repro.core.predictor.cilp import CILParams
from tests.conftest import exp3_curve


def make_adapter(**overrides):
    params = overrides.pop(
        "params", CILParams(t_train=0.05, t_p=0.05, t_c=0.05, t_infer=0.005)
    )
    base = dict(
        warmup_iters=100,
        end_iter=600,
        total_infers=20_000,
        refit_every=50,
    )
    base.update(overrides)
    return CheckpointFrequencyAdapter(params, **base)


def drive(adapter, curve):
    """Feed a loss curve; return the checkpoint iterations chosen."""
    taken = []
    for i, loss in enumerate(curve, start=1):
        if adapter.observe(i, float(loss)):
            taken.append(i)
    return taken


class TestOnlineBehaviour:
    def test_no_checkpoints_during_warmup(self):
        adapter = make_adapter()
        curve = exp3_curve(600, a=3.0, b=0.01, c=0.3)
        taken = drive(adapter, curve)
        assert all(i > 100 for i in taken)
        assert taken  # improvements exist after warm-up

    def test_front_loaded_on_decaying_curve(self):
        adapter = make_adapter()
        curve = exp3_curve(600, a=3.0, b=0.01, c=0.3)
        taken = drive(adapter, curve)
        gaps = np.diff([100] + taken)
        # Denser updates early than late.
        assert gaps[0] <= gaps[-1]

    def test_flat_curve_yields_no_checkpoints(self):
        adapter = make_adapter()
        curve = np.concatenate([exp3_curve(100, a=3.0, b=0.05, c=0.3),
                                np.full(500, 0.3)])
        taken = drive(adapter, curve)
        # A handful of early checkpoints may pick up the residual warm-up
        # decay still inside the trailing window; the flat region itself
        # must stay quiet.
        assert len(taken) <= 4
        assert all(i < 250 for i in taken)

    def test_noise_does_not_trigger_spurious_checkpoints(self):
        rng = np.random.default_rng(5)
        flat = 0.5 + 0.05 * rng.standard_normal(600)
        flat[:100] = exp3_curve(100, a=2.0, b=0.05, c=0.5, noise=0.05, seed=1)
        adapter = make_adapter()
        taken = drive(adapter, flat)
        assert len(taken) <= 3

    def test_min_spacing_enforced(self):
        params = CILParams(t_train=0.05, t_p=0.5, t_c=0.05, t_infer=0.005)
        adapter = make_adapter(params=params)
        assert adapter.min_spacing == 11  # 0.5/0.05 + 1
        curve = exp3_curve(600, a=5.0, b=0.02, c=0.1)
        taken = drive(adapter, curve)
        assert all(d >= 11 for d in np.diff([100] + taken))

    def test_refits_happen(self):
        adapter = make_adapter()
        drive(adapter, exp3_curve(600, a=3.0, b=0.01, c=0.3))
        assert adapter.refits >= 2

    def test_checkpoints_recorded(self):
        adapter = make_adapter()
        taken = drive(adapter, exp3_curve(600, a=3.0, b=0.01, c=0.3))
        assert adapter.checkpoints == taken


class TestValidation:
    def test_out_of_order_observation(self):
        adapter = make_adapter()
        adapter.observe(1, 1.0)
        with pytest.raises(ScheduleError):
            adapter.observe(3, 0.9)

    def test_smoothed_loss_requires_observation(self):
        with pytest.raises(ScheduleError):
            make_adapter().smoothed_loss

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"warmup_iters": 2},
            {"end_iter": 50},
            {"total_infers": 0},
        ],
    )
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ScheduleError):
            make_adapter(**kwargs)
