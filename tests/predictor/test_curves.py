"""Learning-curve family fitting tests: parameter recovery and selection."""

import numpy as np
import pytest

from repro.errors import FitError
from repro.core.predictor.curves import (
    CURVE_FAMILIES,
    PAPER_FAMILIES,
    Exp2,
    Exp3,
    Expd3,
    Lin2,
    Pow3,
    fit_all_curves,
)


def xs(n=200):
    return np.arange(1, n + 1, dtype=np.float64)


class TestParameterRecovery:
    def test_exp2_recovers_its_own_data(self):
        x = xs()
        y = Exp2.func(x, 3.0, 0.01)
        model = Exp2().fit(x, y)
        np.testing.assert_allclose(model.params, [3.0, 0.01], rtol=1e-3)
        assert model.mse < 1e-10

    def test_exp3_recovers_its_own_data(self):
        x = xs()
        y = Exp3.func(x, 2.0, 0.02, 0.5)
        model = Exp3().fit(x, y)
        np.testing.assert_allclose(model.params, [2.0, 0.02, 0.5], rtol=1e-2)

    def test_lin2_recovers_its_own_data(self):
        x = xs()
        y = Lin2.func(x, -0.01, 5.0)
        model = Lin2().fit(x, y)
        np.testing.assert_allclose(model.params, [-0.01, 5.0], rtol=1e-6)

    def test_expd3_recovers_its_own_data(self):
        x = xs()
        y = Expd3.func(x, 3.0, 0.015, 0.4)
        model = Expd3().fit(x, y)
        np.testing.assert_allclose(model.predict(x), y, atol=1e-6)

    def test_pow3_recovers_its_own_data(self):
        x = xs()
        y = Pow3.func(x, 5.0, 0.7, 0.2)
        model = Pow3().fit(x, y)
        np.testing.assert_allclose(model.predict(x), y, atol=1e-5)

    def test_fit_with_noise_close(self):
        rng = np.random.default_rng(0)
        x = xs(500)
        y = Exp3.func(x, 2.0, 0.01, 0.5) + rng.normal(0, 0.01, x.size)
        model = Exp3().fit(x, y)
        assert model.mse < 4e-4
        assert model.predict_scalar(1000) == pytest.approx(0.5, abs=0.05)


class TestSelection:
    def test_exp3_beats_lin2_on_exponential_data(self):
        x = xs()
        y = Exp3.func(x, 2.0, 0.02, 0.5)
        fitted = fit_all_curves(x, y, PAPER_FAMILIES)
        best = min(fitted.values(), key=lambda m: m.mse)
        assert fitted["exp3"].mse < fitted["lin2"].mse
        assert fitted["exp3"].mse < 1e-8
        # expd3 can represent the same function, so the winner is one of
        # the two exponential-to-asymptote families.
        assert best.name in ("exp3", "expd3")

    def test_paper_families_excludes_pow3(self):
        x = xs(50)
        y = Exp3.func(x, 2.0, 0.02, 0.5)
        fitted = fit_all_curves(x, y, PAPER_FAMILIES)
        assert set(fitted) == {"exp2", "exp3", "lin2", "expd3"}

    def test_default_families_include_pow3(self):
        x = xs(50)
        y = Pow3.func(x, 5.0, 0.5, 0.1)
        fitted = fit_all_curves(x, y)
        assert "pow3" in fitted

    def test_multistart_escapes_bad_local_minimum(self):
        # A fast-then-slow two-phase curve: single-start exp3 fits are
        # notorious for landing on the slow phase only.
        x = xs(300)
        y = 2.0 * np.exp(-0.05 * x) + 1.0 * np.exp(-0.005 * x) + 0.2
        fitted = fit_all_curves(x, y)
        assert min(m.mse for m in fitted.values()) < 0.01


class TestValidation:
    def test_predict_before_fit(self):
        with pytest.raises(FitError):
            Exp3().predict(xs(10))

    def test_too_few_points(self):
        with pytest.raises(FitError):
            Exp3().fit([1.0, 2.0], [1.0, 0.5])

    def test_mismatched_lengths(self):
        with pytest.raises(FitError):
            Exp2().fit([1.0, 2.0, 3.0], [1.0, 0.5])

    def test_mse_on_holdout(self):
        x = xs()
        y = Exp3.func(x, 2.0, 0.02, 0.5)
        model = Exp3().fit(x[:100], y[:100])
        assert model.mse_on(x[100:], y[100:]) < 1e-6

    def test_repr_shows_params(self):
        x = xs(50)
        model = Lin2().fit(x, Lin2.func(x, -0.1, 3.0))
        assert "Lin2" in repr(model) and "mse" in repr(model)
        assert "unfitted" in repr(Exp2())

    def test_all_families_are_decreasing_capable(self):
        """Every family can represent a decreasing curve on [1, 100]."""
        x = xs(100)
        y = 2.0 * np.exp(-0.03 * x) + 0.3
        for family in CURVE_FAMILIES:
            model = family().fit(x, y)
            pred = model.predict(x)
            assert pred[0] > pred[-1]
