"""IPP facade tests: warm-up observation to schedule generation."""

import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.core.predictor.ipp import InferencePerformancePredictor
from tests.conftest import exp3_curve


@pytest.fixture
def ipp(small_params):
    pred = InferencePerformancePredictor(small_params)
    pred.observe_warmup(exp3_curve(300, a=3.0, b=0.01, c=0.4, noise=0.02),
                        start_iteration=1, horizon=1200)
    return pred


class TestObservation:
    def test_fit_happens_on_observe(self, ipp):
        assert ipp.tlp is not None
        assert ipp.loss_pred(100) > ipp.loss_pred(1000)

    def test_predictions_track_truth(self, ipp):
        truth = 3.0 * np.exp(-0.01 * 600) + 0.4
        assert ipp.loss_pred(600) == pytest.approx(truth, abs=0.15)

    def test_external_predictor_bypasses_tlp(self, small_params):
        pred = InferencePerformancePredictor(
            small_params, loss_pred=lambda i: 42.0
        )
        assert pred.loss_pred(5) == 42.0
        assert pred.tlp is None

    def test_schedule_before_observe_rejected(self, small_params):
        pred = InferencePerformancePredictor(small_params)
        with pytest.raises(ScheduleError):
            pred.schedule("fixed", end_iter=100, total_infers=100)

    def test_invalid_fit_fraction(self, small_params):
        with pytest.raises(ScheduleError):
            InferencePerformancePredictor(small_params, fit_start_fraction=1.0)


class TestScheduleGeneration:
    def test_epoch_schedule(self, ipp):
        schedule = ipp.schedule(
            "epoch", end_iter=1200, total_infers=1000, iters_per_epoch=300
        )
        assert schedule.kind == "epoch"
        assert schedule.iterations == (600, 900, 1200)

    def test_epoch_requires_iters_per_epoch(self, ipp):
        with pytest.raises(ScheduleError):
            ipp.schedule("epoch", end_iter=1200, total_infers=1000)

    def test_fixed_schedule(self, ipp):
        schedule = ipp.schedule(
            "fixed", end_iter=1200, total_infers=10_000, max_interval=100
        )
        assert schedule.kind == "fixed"
        assert schedule.num_checkpoints > 0
        assert schedule.start_iter == 300  # warm-up end

    def test_greedy_schedule_sweeps_threshold(self, ipp):
        schedule = ipp.schedule("greedy", end_iter=1200, total_infers=10_000)
        assert schedule.kind == "greedy"
        assert schedule.num_checkpoints > 0
        assert np.isfinite(schedule.predicted_cil)

    def test_greedy_with_explicit_threshold_is_paper_exact(self, ipp):
        schedule = ipp.schedule(
            "greedy", end_iter=1200, total_infers=10_000, threshold=0.05
        )
        assert schedule.threshold == pytest.approx(0.05)

    def test_explicit_start_iter(self, ipp):
        schedule = ipp.schedule(
            "fixed", end_iter=1200, total_infers=1000,
            start_iter=500, max_interval=50,
        )
        assert schedule.start_iter == 500
        assert all(it > 500 for it in schedule.iterations)

    def test_unknown_algorithm(self, ipp):
        with pytest.raises(ScheduleError):
            ipp.schedule("magic", end_iter=1200, total_infers=1000)

    def test_cil_predictor_shares_fit(self, ipp):
        cilp = ipp.cil_predictor()
        assert cilp.loss_pred(600) == ipp.loss_pred(600)
        assert cilp.acc_loss(50, t_max=30.0) > 0


class TestScheduleQuality:
    def test_greedy_front_loads_on_decaying_curve(self, ipp):
        schedule = ipp.schedule("greedy", end_iter=1200, total_infers=50_000)
        gaps = np.diff((schedule.start_iter,) + schedule.iterations)
        if len(gaps) >= 4:
            assert np.mean(gaps[: len(gaps) // 2]) <= np.mean(
                gaps[len(gaps) // 2 :]
            )

    def test_fixed_beats_single_checkpoint_in_prediction(self, ipp):
        best = ipp.schedule(
            "fixed", end_iter=1200, total_infers=50_000, max_interval=300
        )
        from repro.core.predictor.schedules import fixed_interval_schedule

        rare = fixed_interval_schedule(
            300, 1200, 50_000, ipp.loss_pred, ipp.params,
            max_interval=900,
        )
        # The searched optimum can't be worse than any single candidate.
        assert best.predicted_cil <= rare.predicted_cil + 1e-9
