"""Schedule-search algorithm tests (Algorithms 2 and 3 + baseline)."""

import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.core.predictor.schedules import (
    Schedule,
    best_greedy_schedule,
    epoch_schedule,
    fixed_interval_schedule,
    greedy_schedule,
    warmup_threshold,
)


def decaying(loss0=5.0, rate=0.01, floor=0.5):
    return lambda x: max(floor, loss0 - rate * x)


class TestScheduleDataclass:
    def test_valid(self):
        s = Schedule("fixed", (10, 20, 30), interval=10, start_iter=0, end_iter=30)
        assert s.num_checkpoints == 3
        assert 20 in s and 15 not in s

    def test_non_increasing_rejected(self):
        with pytest.raises(ScheduleError):
            Schedule("fixed", (10, 10), start_iter=0, end_iter=30)

    def test_out_of_range_rejected(self):
        with pytest.raises(ScheduleError):
            Schedule("fixed", (5,), start_iter=5, end_iter=30)
        with pytest.raises(ScheduleError):
            Schedule("fixed", (31,), start_iter=5, end_iter=30)

    def test_empty_is_fine(self):
        assert Schedule("epoch", (), start_iter=0, end_iter=10).num_checkpoints == 0


class TestEpochSchedule:
    def test_boundaries_after_warmup(self):
        s = epoch_schedule(start_iter=216, end_iter=1080, iters_per_epoch=216)
        assert s.iterations == (432, 648, 864, 1080)

    def test_warmup_not_on_boundary(self):
        s = epoch_schedule(start_iter=100, end_iter=648, iters_per_epoch=216)
        assert s.iterations == (216, 432, 648)

    def test_paper_tc1_geometry(self):
        # 16 epochs of 216 iterations, 3-epoch warm-up -> 13 checkpoints.
        s = epoch_schedule(3 * 216, 16 * 216, 216)
        assert s.num_checkpoints == 13

    def test_validation(self):
        with pytest.raises(ScheduleError):
            epoch_schedule(10, 5, 2)
        with pytest.raises(ScheduleError):
            epoch_schedule(0, 10, 0)


class TestFixedInterval:
    def test_finds_minimum_over_intervals(self, small_params):
        loss_pred = decaying()
        best = fixed_interval_schedule(0, 100, 5000, loss_pred, small_params)
        assert best.kind == "fixed"
        assert best.interval is not None
        assert best.iterations[0] == best.interval
        # Exhaustively verify optimality via the same walk.
        for interval in range(1, 101):
            other = fixed_interval_schedule(
                0, 100, 5000, loss_pred, small_params, max_interval=interval
            )
            assert best.predicted_cil <= other.predicted_cil + 1e-9

    def test_iterations_follow_interval(self, small_params):
        best = fixed_interval_schedule(10, 100, 1000, decaying(), small_params)
        diffs = np.diff(best.iterations)
        assert np.all(diffs == best.interval)

    def test_flat_curve_prefers_rare_checkpoints(self, small_params):
        best = fixed_interval_schedule(
            0, 200, 10_000, lambda x: 1.0, small_params
        )
        # No improvement to chase: any interval gives the same CIL, and
        # ties resolve to the first minimum — but the schedule must still
        # be valid.
        assert best.predicted_cil == pytest.approx(10_000 * 1.0, rel=0.01)

    def test_max_interval_respected(self, small_params):
        best = fixed_interval_schedule(
            0, 100, 1000, decaying(), small_params, max_interval=7
        )
        assert best.interval <= 7

    def test_validation(self, small_params):
        with pytest.raises(ScheduleError):
            fixed_interval_schedule(10, 10, 100, decaying(), small_params)
        with pytest.raises(ScheduleError):
            fixed_interval_schedule(0, 10, 0, decaying(), small_params)


class TestWarmupThreshold:
    def test_mean_plus_std(self):
        losses = [1.0, 0.8, 0.7]  # deltas: 0.2, 0.1
        expected = np.mean([0.2, 0.1]) + np.std([0.2, 0.1])
        assert warmup_threshold(losses) == pytest.approx(expected)

    def test_scale(self):
        losses = [1.0, 0.8, 0.7]
        assert warmup_threshold(losses, scale=2.0) == pytest.approx(
            2 * warmup_threshold(losses)
        )

    def test_validation(self):
        with pytest.raises(ScheduleError):
            warmup_threshold([1.0])
        with pytest.raises(ScheduleError):
            warmup_threshold([1.0, 0.9], scale=0.0)


class TestGreedy:
    def test_checkpoints_only_on_sufficient_improvement(self, small_params):
        # Loss drops 0.05/iteration; threshold 0.12 -> every 3rd iteration.
        s = greedy_schedule(0, 20, 1000, 0.12, decaying(5.0, 0.05, 0.0), small_params)
        assert s.iterations[0] == 3
        assert all(d == 3 for d in np.diff(s.iterations))

    def test_no_checkpoints_on_flat_curve(self, small_params):
        s = greedy_schedule(0, 50, 1000, 0.1, lambda x: 1.0, small_params)
        assert s.num_checkpoints == 0
        assert s.predicted_cil == pytest.approx(1000 * 1.0)

    def test_front_loads_on_convex_curve(self, small_params):
        def loss(x):
            return 5.0 * np.exp(-0.05 * x)

        s = greedy_schedule(0, 200, 100_000, 0.3, loss, small_params)
        gaps = np.diff((0,) + s.iterations)
        assert gaps[0] < gaps[-1]  # denser early, sparser late

    def test_increasing_loss_never_checkpoints(self, small_params):
        s = greedy_schedule(0, 50, 1000, 0.01, lambda x: 1.0 + 0.1 * x, small_params)
        assert s.num_checkpoints == 0

    def test_threshold_recorded(self, small_params):
        s = greedy_schedule(0, 20, 1000, 0.12, decaying(5.0, 0.05, 0.0), small_params)
        assert s.threshold == pytest.approx(0.12)

    def test_terminates_even_when_condition_never_fires(self, small_params):
        # The paper's listing loops forever here; ours must terminate.
        s = greedy_schedule(0, 10_000, 10, 999.0, decaying(), small_params)
        assert s.num_checkpoints == 0

    def test_validation(self, small_params):
        with pytest.raises(ScheduleError):
            greedy_schedule(5, 5, 10, 0.1, decaying(), small_params)
        with pytest.raises(ScheduleError):
            greedy_schedule(0, 10, 10, -0.1, decaying(), small_params)
        with pytest.raises(ScheduleError):
            greedy_schedule(0, 10, 0, 0.1, decaying(), small_params)


class TestBestGreedy:
    def test_picks_lowest_predicted_cil(self, small_params):
        def loss(x):
            return 5.0 * np.exp(-0.02 * x)

        base = 0.01
        best = best_greedy_schedule(0, 300, 50_000, base, loss, small_params)
        for scale in (0.5, 1.0, 4.0, 16.0):
            candidate = greedy_schedule(
                0, 300, 50_000, base * scale, loss, small_params
            )
            if candidate.num_checkpoints:
                assert best.predicted_cil <= candidate.predicted_cil + 1e-9

    def test_flat_curve_falls_back_to_single_checkpoint(self, small_params):
        best = best_greedy_schedule(0, 100, 1000, 0.5, lambda x: 1.0, small_params)
        assert best.num_checkpoints == 1

    def test_validation(self, small_params):
        with pytest.raises(ScheduleError):
            best_greedy_schedule(0, 10, 10, -1.0, lambda x: 1.0, small_params)
        with pytest.raises(ScheduleError):
            best_greedy_schedule(
                0, 10, 10, 0.1, lambda x: 1.0, small_params, scales=()
            )
