"""CILP tests: Algorithm 1 accounting, Eq. 1 mapping, Eq. 2 closed form."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ScheduleError
from repro.core.predictor.cilp import CILParams, CILPredictor, cil_window


class TestCILParams:
    def test_window_seconds(self, small_params):
        # 10 iterations * 0.1 + 0.05 stall
        assert small_params.window_seconds(10) == pytest.approx(1.05)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(t_train=0.0, t_p=0.1, t_c=0.1, t_infer=0.01),
            dict(t_train=0.1, t_p=-0.1, t_c=0.1, t_infer=0.01),
            dict(t_train=0.1, t_p=0.1, t_c=-0.1, t_infer=0.01),
            dict(t_train=0.1, t_p=0.1, t_c=0.1, t_infer=0.0),
        ],
    )
    def test_invalid_params(self, kwargs):
        with pytest.raises(ConfigurationError):
            CILParams(**kwargs)


class TestAlgorithm1:
    def test_first_window_includes_load_time(self, small_params):
        # window = 10*0.1 + 0.05 + 0.05(t_c) = 1.1s -> 110 inferences @10ms
        loss, infers = cil_window(10, 0.5, 1, 10_000, small_params)
        assert infers == 110
        assert loss == pytest.approx(0.5 * 110)

    def test_later_windows_exclude_load_time(self, small_params):
        # window = 10*0.1 + 0.05 = 1.05s -> 105 inferences
        loss, infers = cil_window(10, 0.5, 2, 10_000, small_params)
        assert infers == 105
        assert loss == pytest.approx(0.5 * 105)

    def test_remaining_inferences_cap(self, small_params):
        loss, infers = cil_window(10, 0.5, 1, 7, small_params)
        assert infers == 7
        assert loss == pytest.approx(3.5)

    def test_zero_remaining(self, small_params):
        loss, infers = cil_window(10, 0.5, 2, 0, small_params)
        assert infers == 0 and loss == 0.0

    def test_validation(self, small_params):
        with pytest.raises(ScheduleError):
            cil_window(0, 0.5, 1, 10, small_params)
        with pytest.raises(ScheduleError):
            cil_window(5, 0.5, 0, 10, small_params)
        with pytest.raises(ScheduleError):
            cil_window(5, 0.5, 1, -1, small_params)


class TestEq1Mapping:
    def flat(self, loss=1.0):
        return lambda x: loss

    def test_time_before_first_stall_counts_iterations(self, small_params):
        pred = CILPredictor(self.flat(), small_params)
        # 0.45s at 0.1 s/iter -> 4 complete iterations
        assert pred.iters_at_time(0.45, ckpt_interval=10) == 4

    def test_full_windows_counted(self, small_params):
        pred = CILPredictor(self.flat(), small_params)
        # one window = 1.05s -> 10 iterations
        assert pred.iters_at_time(1.05, 10) == 10
        assert pred.iters_at_time(2.10, 10) == 20

    def test_stall_time_does_not_advance_iterations(self, small_params):
        pred = CILPredictor(self.flat(), small_params)
        # At 1.04s we are inside the stall after iteration 10.
        assert pred.iters_at_time(1.04, 10) == 10

    def test_monotone_in_time(self, small_params):
        pred = CILPredictor(self.flat(), small_params)
        times = np.linspace(0, 50, 400)
        iters = [pred.iters_at_time(float(t), 7) for t in times]
        assert all(b >= a for a, b in zip(iters, iters[1:]))

    def test_validation(self, small_params):
        pred = CILPredictor(self.flat(), small_params)
        with pytest.raises(ScheduleError):
            pred.iters_at_time(-1.0, 5)
        with pytest.raises(ScheduleError):
            pred.iters_at_time(1.0, 0)

    def test_loss_at_time_uses_mapping(self, small_params):
        pred = CILPredictor(lambda x: 100.0 - x, small_params)
        # 1.05s -> iteration 10 -> loss 90
        assert pred.loss_at_time(1.05, 10) == pytest.approx(90.0)


class TestEq2ClosedForm:
    def test_flat_loss_gives_rate_times_horizon(self, small_params):
        pred = CILPredictor(lambda x: 2.0, small_params)
        # With a constant loss the CIL is ~ loss * (t_max / t_infer),
        # modulo per-window floor effects.
        cil = pred.acc_loss(10, t_max=10.0)
        assert cil == pytest.approx(2.0 * 10.0 / 0.01, rel=0.05)

    def test_no_update_fits_in_horizon(self, small_params):
        pred = CILPredictor(lambda x: 3.0, small_params)
        # t_max smaller than t_c + one window: only the warm-up model.
        cil = pred.acc_loss(1000, t_max=0.5)
        assert cil == pytest.approx(3.0 * 0.5 / 0.01)

    def test_decaying_loss_prefers_small_interval_when_cheap(self):
        params = CILParams(t_train=0.1, t_p=0.0001, t_c=0.0001, t_infer=0.01)
        pred = CILPredictor(lambda x: max(0.0, 10.0 - 0.05 * x), params)
        small = pred.acc_loss(2, t_max=20.0)
        large = pred.acc_loss(100, t_max=20.0)
        assert small < large

    def test_costly_checkpoints_penalize_tiny_intervals(self):
        # Huge stall: updating every iteration slows training so much the
        # consumer sits on stale models.
        params = CILParams(t_train=0.1, t_p=5.0, t_c=0.5, t_infer=0.01)
        pred = CILPredictor(lambda x: max(0.0, 10.0 - 0.05 * x), params)
        tiny = pred.acc_loss(1, t_max=60.0)
        moderate = pred.acc_loss(50, t_max=60.0)
        assert moderate < tiny

    def test_best_fixed_interval_argmin(self, small_params):
        pred = CILPredictor(lambda x: max(0.0, 5.0 - 0.01 * x), small_params)
        best_i, best_v = pred.best_fixed_interval(t_max=30.0, max_interval=50)
        values = [pred.acc_loss(i, 30.0) for i in range(1, 51)]
        assert best_v == pytest.approx(min(values))
        assert values[best_i - 1] == pytest.approx(best_v)

    def test_validation(self, small_params):
        pred = CILPredictor(lambda x: 1.0, small_params)
        with pytest.raises(ScheduleError):
            pred.acc_loss(0, 10.0)
        with pytest.raises(ScheduleError):
            pred.acc_loss(5, 0.0)
        with pytest.raises(ScheduleError):
            pred.best_fixed_interval(10.0, 0)
