"""Training Loss Predictor: smoothing, selection, plausibility filter."""

import numpy as np
import pytest

from repro.errors import FitError
from repro.core.predictor.curves import Exp3
from repro.core.predictor.tlp import TrainingLossPredictor, smooth_losses
from tests.conftest import exp3_curve


class TestSmoothing:
    def test_window_zero_is_identity(self):
        y = np.array([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(smooth_losses(y, 0), y)

    def test_constant_series_unchanged(self):
        y = np.full(10, 2.5)
        np.testing.assert_allclose(smooth_losses(y, 5), y)

    def test_reduces_variance(self):
        rng = np.random.default_rng(1)
        y = rng.standard_normal(200)
        assert smooth_losses(y, 21).std() < y.std() / 2

    def test_preserves_length(self):
        assert smooth_losses(np.arange(10.0), 4).shape == (10,)

    def test_mean_approximately_preserved(self):
        rng = np.random.default_rng(2)
        y = rng.standard_normal(500) + 5.0
        assert smooth_losses(y, 25).mean() == pytest.approx(y.mean(), rel=0.01)


class TestFitting:
    def test_recovers_clean_exp3(self):
        losses = exp3_curve(400)
        tlp = TrainingLossPredictor().fit(losses)
        assert tlp.predict_scalar(1000) == pytest.approx(
            2.0 * np.exp(-0.002 * 1000) + 0.3, abs=0.02
        )

    def test_insample_selection_by_mse(self):
        losses = exp3_curve(400)
        tlp = TrainingLossPredictor(selection="insample").fit(losses)
        table = tlp.mse_table()
        assert table[tlp.best_name] == min(table.values())

    def test_holdout_selection_populates_holdout_mse(self):
        losses = exp3_curve(400, noise=0.01)
        tlp = TrainingLossPredictor(selection="holdout").fit(losses)
        assert tlp.holdout_mse
        assert tlp.best is not None

    def test_noisy_fit_with_smoothing(self):
        losses = exp3_curve(600, noise=0.1, seed=3)
        tlp = TrainingLossPredictor(smoothing_window=25).fit(losses)
        assert tlp.predict_scalar(600) == pytest.approx(
            2.0 * np.exp(-0.002 * 600) + 0.3, abs=0.1
        )

    def test_predictions_clamped_at_zero(self):
        # A steeply-decaying line extrapolates negative; TLP clamps.
        losses = np.linspace(1.0, 0.1, 50)
        tlp = TrainingLossPredictor(selection="insample").fit(losses)
        assert tlp.predict_scalar(10_000) >= 0.0
        assert np.all(tlp.predict([10_000, 20_000]) >= 0.0)

    def test_custom_iterations_axis(self):
        x = np.arange(100, 500, dtype=np.float64)
        y = Exp3.func(x, 2.0, 0.005, 0.4)
        tlp = TrainingLossPredictor().fit(y, iterations=x)
        assert tlp.predict_scalar(450) == pytest.approx(
            Exp3.func(np.array([450.0]), 2.0, 0.005, 0.4)[0], abs=0.02
        )


class TestPlausibilityFilter:
    def test_collapsing_family_filtered(self):
        # Data that lin2 fits perfectly in-window but extrapolates below
        # zero; with a horizon, a decay-to-asymptote family must win.
        x = np.arange(1, 301, dtype=np.float64)
        y = Exp3.func(x, 2.0, 0.008, 0.5)
        tlp = TrainingLossPredictor(selection="holdout").fit(y, horizon=5000)
        pred_end = tlp.predict_scalar(5000)
        assert pred_end > 0.05 * y[-1]

    def test_no_horizon_no_filter(self):
        losses = np.linspace(1.0, 0.5, 100)  # perfectly linear
        tlp = TrainingLossPredictor(selection="insample").fit(losses)
        assert tlp.best_name == "lin2"

    def test_filter_falls_back_when_all_implausible(self):
        # Steep linear decay: every family extrapolates collapse, but fit
        # must still return a best model rather than raising.
        losses = np.linspace(10.0, 1.0, 60)
        tlp = TrainingLossPredictor().fit(losses, horizon=100_000)
        assert tlp.best is not None


class TestValidation:
    def test_too_few_losses(self):
        with pytest.raises(FitError):
            TrainingLossPredictor().fit([1.0, 0.9])

    def test_nan_losses_rejected(self):
        with pytest.raises(FitError):
            TrainingLossPredictor().fit([1.0, float("nan"), 0.8, 0.7])

    def test_length_mismatch(self):
        with pytest.raises(FitError):
            TrainingLossPredictor().fit([1.0, 0.9, 0.8, 0.7], iterations=[1, 2])

    def test_predict_before_fit(self):
        with pytest.raises(FitError):
            TrainingLossPredictor().predict_scalar(10)
        with pytest.raises(FitError):
            TrainingLossPredictor().best_name

    def test_invalid_construction(self):
        with pytest.raises(FitError):
            TrainingLossPredictor(smoothing_window=-1)
        with pytest.raises(FitError):
            TrainingLossPredictor(selection="magic")
        with pytest.raises(FitError):
            TrainingLossPredictor(holdout_fraction=1.5)
