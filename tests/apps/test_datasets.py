"""Synthetic dataset generator tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.apps.datasets import make_diffraction_pairs, make_expression_profiles


class TestExpressionProfiles:
    def test_shapes(self):
        x_tr, y_tr, x_te, y_te = make_expression_profiles(100, 20, 5, length=32)
        assert x_tr.shape == (100, 32, 1)
        assert y_tr.shape == (100,)
        assert x_te.shape == (20, 32, 1)
        assert y_te.shape == (20,)

    def test_dtypes(self):
        x_tr, y_tr, _x, _y = make_expression_profiles(10, 5, 2)
        assert x_tr.dtype == np.float32
        assert y_tr.dtype == np.int64

    def test_labels_in_range(self):
        _x, y_tr, _xt, y_te = make_expression_profiles(200, 50, 7)
        assert set(np.unique(y_tr)) <= set(range(7))
        assert y_tr.min() >= 0 and y_tr.max() < 7

    def test_deterministic_per_seed(self):
        a = make_expression_profiles(20, 5, 3, seed=9)
        b = make_expression_profiles(20, 5, 3, seed=9)
        for arr_a, arr_b in zip(a, b):
            np.testing.assert_array_equal(arr_a, arr_b)

    def test_seed_changes_data(self):
        a = make_expression_profiles(20, 5, 3, seed=1)[0]
        b = make_expression_profiles(20, 5, 3, seed=2)[0]
        assert not np.array_equal(a, b)

    def test_classes_are_separable(self):
        """Per-class means differ: a centroid classifier beats chance."""
        x, y, xt, yt = make_expression_profiles(400, 100, 3, noise=0.5, seed=4)
        centroids = np.stack([x[y == k].mean(axis=0) for k in range(3)])
        dists = ((xt[:, None] - centroids[None]) ** 2).sum(axis=(2, 3))
        acc = (dists.argmin(axis=1) == yt).mean()
        assert acc > 0.6

    def test_noise_controls_overlap(self):
        def centroid_acc(noise):
            x, y, xt, yt = make_expression_profiles(
                400, 100, 3, noise=noise, seed=4
            )
            centroids = np.stack([x[y == k].mean(axis=0) for k in range(3)])
            dists = ((xt[:, None] - centroids[None]) ** 2).sum(axis=(2, 3))
            return (dists.argmin(axis=1) == yt).mean()

        assert centroid_acc(0.3) > centroid_acc(3.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_expression_profiles(10, 5, 1)
        with pytest.raises(ConfigurationError):
            make_expression_profiles(0, 5, 2)


class TestDiffractionPairs:
    def test_shapes(self):
        x_tr, y_tr, x_te, y_te = make_diffraction_pairs(50, 10, size=16)
        assert x_tr.shape == (50, 16, 16, 2)
        assert y_tr.shape == (50, 16, 16, 2)
        assert x_te.shape == (10, 16, 16, 2)

    def test_amplitude_in_unit_range(self):
        _x, y, _xt, _yt = make_diffraction_pairs(20, 5)
        amplitude = y[..., 0]
        assert amplitude.min() >= -1e-6
        assert amplitude.max() <= 1.0 + 1e-6

    def test_phase_bounded(self):
        _x, y, _xt, _yt = make_diffraction_pairs(20, 5)
        phase = y[..., 1]
        assert np.abs(phase).max() <= np.pi / 2 + 1e-6

    def test_deterministic_per_seed(self):
        a = make_diffraction_pairs(10, 2, seed=3)
        b = make_diffraction_pairs(10, 2, seed=3)
        np.testing.assert_array_equal(a[0], b[0])

    def test_task_is_learnable_linearly(self):
        """A ridge regression from the sensor to the amplitude channel
        beats predicting the mean — i.e. the inverse map exists."""
        x, y, xt, yt = make_diffraction_pairs(300, 60, size=8, seed=5)
        a = x.reshape(300, -1)
        b = y[..., 0].reshape(300, -1)
        at = xt.reshape(60, -1)
        bt = yt[..., 0].reshape(60, -1)
        reg = 1e-3 * np.eye(a.shape[1])
        w = np.linalg.solve(a.T @ a + reg, a.T @ b)
        pred = at @ w
        mse_model = np.mean((pred - bt) ** 2)
        mse_mean = np.mean((b.mean(axis=0) - bt) ** 2)
        # A linear probe beats the mean predictor decisively (the conv net
        # does much better; this only establishes the signal exists).
        assert mse_model < 0.75 * mse_mean

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_diffraction_pairs(0, 5)
