"""App registry tests: paper geometry and model construction."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.substrates.cost import GB, MB
from repro.apps import get_app, list_apps
from repro.apps.registry import AppTiming


class TestRegistry:
    def test_all_apps_present(self):
        assert set(list_apps()) == {"nt3a", "nt3b", "tc1", "ptychonn"}

    def test_unknown_app(self):
        with pytest.raises(ConfigurationError):
            get_app("resnet")

    def test_paper_checkpoint_sizes(self):
        assert get_app("nt3a").checkpoint_bytes == 600 * MB
        assert get_app("nt3b").checkpoint_bytes == int(1.7 * GB)
        assert get_app("tc1").checkpoint_bytes == int(4.7 * GB)
        assert get_app("ptychonn").checkpoint_bytes == int(4.5 * GB)

    def test_paper_sample_counts(self):
        assert get_app("tc1").n_train == 4320
        assert get_app("tc1").n_test == 1080
        assert get_app("nt3a").n_train == 1120
        assert get_app("ptychonn").n_train == 16_100

    def test_tc1_iteration_geometry(self):
        """Paper: TC1 epoch boundary = 216 iterations."""
        tc1 = get_app("tc1")
        assert tc1.iters_per_epoch == 216
        assert tc1.total_iters == 216 * 16

    def test_total_inferences_per_figure(self):
        assert get_app("nt3b").total_inferences == 25_000
        assert get_app("tc1").total_inferences == 50_000
        assert get_app("ptychonn").total_inferences == 40_000

    def test_warmup_iters(self):
        tc1 = get_app("tc1")
        assert tc1.warmup_iters == tc1.warmup_epochs * tc1.iters_per_epoch

    def test_ptychonn_has_many_tensors(self):
        """Many small tensors is what penalizes its file path (Fig. 8c)."""
        assert get_app("ptychonn").checkpoint_tensors > get_app("tc1").checkpoint_tensors


class TestModels:
    @pytest.mark.parametrize("name", ["nt3a", "nt3b", "tc1", "ptychonn"])
    def test_model_builds_and_predicts(self, name):
        app = get_app(name)
        model = app.build_model()
        x, y, _xt, _yt = app.dataset(scale=0.05, seed=0)
        pred = model.predict(x[:4])
        assert pred.shape[0] == 4
        assert np.all(np.isfinite(pred))

    @pytest.mark.parametrize("name", ["nt3a", "tc1", "ptychonn"])
    def test_one_epoch_reduces_loss(self, name):
        app = get_app(name)
        model = app.build_model()
        x, y, _xt, _yt = app.dataset(scale=0.05, seed=1)
        history = model.fit(x, y, epochs=2, batch_size=app.batch_size, seed=0)
        assert history.epoch_loss[-1] < history.epoch_loss[0]

    def test_nt3_outputs_two_classes(self):
        assert get_app("nt3a").build_model().output_shape == (2,)

    def test_tc1_outputs_eighteen_classes(self):
        assert get_app("tc1").build_model().output_shape == (18,)

    def test_ptychonn_outputs_two_channels(self):
        assert get_app("ptychonn").build_model().output_shape == (16, 16, 2)


class TestDatasetScaling:
    def test_scale_shrinks_counts(self):
        app = get_app("tc1")
        x_full, *_ = app.dataset(scale=1.0, seed=0)
        x_small, *_ = app.dataset(scale=0.1, seed=0)
        assert x_small.shape[0] < x_full.shape[0]
        assert x_small.shape[0] >= 2 * app.batch_size

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            get_app("tc1").dataset(scale=0.0)
        with pytest.raises(ConfigurationError):
            get_app("tc1").dataset(scale=1.5)

    def test_invalid_timing(self):
        with pytest.raises(ConfigurationError):
            AppTiming(t_train=0.0, t_infer=0.01)
