"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.registry import AppProfile, AppTiming
from repro.core.predictor.cilp import CILParams
from repro.substrates.cost import MB
from repro.substrates.memory.tiers import TierKind, TierSpec
from repro.substrates.network.links import LinkKind, LinkSpec


# ---------------------------------------------------------------------------
# Synthetic loss curves (fast, deterministic stand-ins for real training)
# ---------------------------------------------------------------------------

def exp3_curve(n: int, a: float = 2.0, b: float = 0.002, c: float = 0.3,
               noise: float = 0.0, seed: int = 0) -> np.ndarray:
    """A textbook decaying loss curve: a*exp(-b*x)+c (+ optional noise)."""
    x = np.arange(1, n + 1, dtype=np.float64)
    y = a * np.exp(-b * x) + c
    if noise > 0:
        y = y + np.random.default_rng(seed).normal(0.0, noise, size=n)
    return y


@pytest.fixture
def small_params() -> CILParams:
    """Fast-arithmetic CIL parameters used across predictor tests."""
    return CILParams(t_train=0.1, t_p=0.05, t_c=0.05, t_infer=0.01)


# ---------------------------------------------------------------------------
# Tiny hardware specs (small numbers make capacity tests cheap)
# ---------------------------------------------------------------------------

@pytest.fixture
def tiny_tier() -> TierSpec:
    return TierSpec(
        name="test.dram",
        kind=TierKind.HOST_DRAM,
        capacity_bytes=1000,
        read_bw=100.0,
        write_bw=50.0,
        read_latency=0.01,
        write_latency=0.02,
    )


@pytest.fixture
def tiny_pfs() -> TierSpec:
    return TierSpec(
        name="test.pfs",
        kind=TierKind.PFS,
        capacity_bytes=10_000,
        read_bw=10.0,
        write_bw=5.0,
        read_latency=0.1,
        write_latency=0.2,
        per_object_overhead=0.05,
    )


@pytest.fixture
def tiny_link() -> LinkSpec:
    return LinkSpec(
        name="test.link",
        kind=LinkKind.LOOPBACK,
        bandwidth=100.0,
        latency=0.001,
        per_message_overhead=0.002,
    )


# ---------------------------------------------------------------------------
# A miniature app profile: tiny geometry for fast workflow tests
# ---------------------------------------------------------------------------

def _mini_data(n_train, n_test, seed):
    from repro.apps.datasets import make_expression_profiles

    return make_expression_profiles(n_train, n_test, n_classes=2, seed=seed)


@pytest.fixture
def mini_app() -> AppProfile:
    from repro.apps.candle import build_nt3

    return AppProfile(
        name="mini",
        display_name="Mini",
        build_model=build_nt3,
        make_data=_mini_data,
        loss_metric="cross_entropy",
        checkpoint_bytes=100 * MB,
        checkpoint_tensors=10,
        timing=AppTiming(t_train=0.05, t_infer=0.005),
        n_train=200,
        n_test=40,
        batch_size=20,
        epochs=5,
        warmup_epochs=1,
        total_inferences=2_000,
    )
