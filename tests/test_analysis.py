"""Metrics and reporting tests."""

import pytest

from repro.errors import WorkflowError
from repro.analysis.metrics import cil_over_requests, latency_summary, speedup
from repro.analysis.reporting import (
    PAPER_FIG8,
    PAPER_FIG10,
    PAPER_TABLE1,
    format_fig8_table,
    format_fig9_table,
    format_fig10_table,
    format_table1,
)


class TestMetrics:
    def test_latency_summary(self):
        summary = latency_summary([1.0, 2.0, 3.0])
        assert summary.mean == pytest.approx(2.0)
        assert summary.minimum == 1.0 and summary.maximum == 3.0
        assert summary.n == 3

    def test_latency_summary_empty(self):
        with pytest.raises(WorkflowError):
            latency_summary([])

    def test_speedup(self):
        assert speedup(8.0, 1.0) == pytest.approx(8.0)
        with pytest.raises(WorkflowError):
            speedup(1.0, 0.0)

    def test_cil_over_requests(self):
        total, mean = cil_over_requests([1.0, 2.0, float("nan"), 3.0])
        assert total == pytest.approx(6.0)
        assert mean == pytest.approx(2.0)

    def test_cil_all_nan(self):
        with pytest.raises(WorkflowError):
            cil_over_requests([float("nan")])


class TestPaperConstants:
    def test_fig8_baseline_is_slowest_everywhere(self):
        for app, row in PAPER_FIG8.items():
            assert row["h5py-baseline"] == max(row.values()), app

    def test_fig8_gpu_sync_is_fastest_everywhere(self):
        for app, row in PAPER_FIG8.items():
            assert row["gpu-sync"] == min(row.values()), app

    def test_fig10_adaptive_best_everywhere(self):
        for app, row in PAPER_FIG10.items():
            assert row["adaptive"] <= row["fixed"] <= row["baseline"], app

    def test_table1_adaptive_fewer_ckpts_than_fixed(self):
        for app, row in PAPER_TABLE1.items():
            assert row["adaptive"]["ckpts"] <= row["fixed"]["ckpts"], app


class TestFormatters:
    def test_fig8_table_renders(self):
        measured = {k: v * 1.1 for k, v in PAPER_FIG8["tc1"].items()}
        text = format_fig8_table("tc1", measured)
        assert "h5py-baseline" in text
        assert "speedup" in text
        assert "Figure 8" in text

    def test_fig9_table_renders(self):
        text = format_fig9_table(
            {
                "gpu": {"cil": 100.0, "overhead": 1.0},
                "host": {"cil": 110.0, "overhead": 7.0},
                "pfs": {"cil": 130.0, "overhead": 60.0},
            }
        )
        assert "Figure 9" in text and "pfs" in text

    def test_fig10_table_renders(self):
        text = format_fig10_table(
            "tc1", {"baseline": 100.0, "fixed": 95.0, "adaptive": 90.0}
        )
        assert "adaptive" in text and "32800" in text.replace(",", "")

    def test_table1_renders(self):
        text = format_table1(
            {
                "tc1": {
                    "baseline": {"ckpts": 13, "overhead": 1.0},
                    "fixed": {"ckpts": 50, "overhead": 4.0},
                    "adaptive": {"ckpts": 20, "overhead": 1.5},
                }
            }
        )
        assert "Table 1" in text and "tc1" in text

    def test_unknown_app_still_renders(self):
        text = format_fig8_table("mystery", {"gpu-sync": 0.1})
        assert "gpu-sync" in text
