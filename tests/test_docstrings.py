"""Meta-test: every public item in the library is documented.

Deliverable (e) requires doc comments on every public item; this test
keeps that true as the code evolves: every module, public class, and
public function/method in ``repro`` must carry a docstring.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(iter_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their source
        if inspect.isclass(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(f"class {name}")
        elif inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(f"def {name}")
    assert not undocumented, (
        f"{module.__name__} has undocumented public items: {undocumented}"
    )
