"""Trace container tests."""

import pytest

from repro.workflow.trace import Trace


class TestTrace:
    def test_append_and_iterate(self):
        trace = Trace()
        trace.add(1.0, "iteration", "producer", iteration=1)
        trace.add(2.0, "swap", "consumer", version=1)
        assert len(trace) == 2
        kinds = [e.kind for e in trace]
        assert kinds == ["iteration", "swap"]

    def test_filter_by_kind(self):
        trace = Trace()
        for i in range(3):
            trace.add(float(i), "iteration", "producer", iteration=i)
        trace.add(5.0, "swap", "consumer")
        assert len(trace.events("iteration")) == 3
        assert len(trace.events("swap")) == 1
        assert len(trace.events()) == 4

    def test_last_of_kind(self):
        trace = Trace()
        trace.add(1.0, "swap", "consumer", version=1)
        trace.add(2.0, "swap", "consumer", version=2)
        assert trace.last("swap").data["version"] == 2

    def test_last_missing_kind_raises(self):
        with pytest.raises(KeyError):
            Trace().last("nothing")

    def test_data_is_copied(self):
        trace = Trace()
        payload = {"v": 1}
        trace.add(1.0, "x", "a", **payload)
        payload["v"] = 99
        assert trace.last("x").data["v"] == 1
