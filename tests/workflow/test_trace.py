"""Trace container tests."""

import threading

import pytest

from repro.workflow.trace import Trace


class TestTrace:
    def test_append_and_iterate(self):
        trace = Trace()
        trace.add(1.0, "iteration", "producer", iteration=1)
        trace.add(2.0, "swap", "consumer", version=1)
        assert len(trace) == 2
        kinds = [e.kind for e in trace]
        assert kinds == ["iteration", "swap"]

    def test_filter_by_kind(self):
        trace = Trace()
        for i in range(3):
            trace.add(float(i), "iteration", "producer", iteration=i)
        trace.add(5.0, "swap", "consumer")
        assert len(trace.events("iteration")) == 3
        assert len(trace.events("swap")) == 1
        assert len(trace.events()) == 4

    def test_last_of_kind(self):
        trace = Trace()
        trace.add(1.0, "swap", "consumer", version=1)
        trace.add(2.0, "swap", "consumer", version=2)
        assert trace.last("swap").data["version"] == 2

    def test_last_missing_kind_raises(self):
        with pytest.raises(KeyError):
            Trace().last("nothing")

    def test_data_is_copied(self):
        trace = Trace()
        payload = {"v": 1}
        trace.add(1.0, "x", "a", **payload)
        payload["v"] = 99
        assert trace.last("x").data["v"] == 1

    def test_filter_returns_immutable_snapshot(self):
        trace = Trace()
        trace.add(1.0, "iteration", "producer")
        snapshot = trace.events()
        trace.add(2.0, "swap", "consumer")
        assert isinstance(snapshot, tuple)
        assert len(snapshot) == 1
        assert len(trace.events()) == 2


class TestTraceConcurrency:
    def test_concurrent_appends_lose_nothing(self):
        """Producer/consumer-style threads appending concurrently: no
        events are dropped, and each actor's events stay in its own
        append order."""
        trace = Trace()
        per_thread = 500
        actors = ["producer", "consumer", "engine"]

        def appender(actor):
            for i in range(per_thread):
                trace.add(float(i), "iteration", actor, seq=i)

        threads = [
            threading.Thread(target=appender, args=(actor,)) for actor in actors
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert len(trace) == per_thread * len(actors)
        for actor in actors:
            seqs = [e.data["seq"] for e in trace if e.actor == actor]
            assert seqs == list(range(per_thread))

    def test_reads_during_concurrent_appends(self):
        """events()/last() snapshots taken mid-append never raise and
        always see a prefix-consistent view per actor."""
        trace = Trace()
        stop = threading.Event()
        errors = []

        def writer():
            i = 0
            while not stop.is_set():
                trace.add(float(i), "swap", "consumer", version=i)
                i += 1

        def reader():
            while not stop.is_set():
                try:
                    events = trace.events("swap")
                    if events:
                        versions = [e.data["version"] for e in events]
                        assert versions == sorted(versions)
                        assert trace.last("swap").data["version"] >= versions[-1]
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)
                    return

        w = threading.Thread(target=writer)
        r = threading.Thread(target=reader)
        w.start()
        r.start()
        w.join(timeout=0.2)
        stop.set()
        w.join()
        r.join()
        assert not errors
