"""Multi-producer/consumer extension tests."""

import pytest

from repro.errors import WorkflowError
from repro.core.predictor.schedules import epoch_schedule
from repro.workflow.multi import run_fanout, run_sharded
from tests.conftest import exp3_curve


@pytest.fixture
def setup(mini_app):
    curve = exp3_curve(mini_app.total_iters, a=3.0, b=0.05, c=0.2)
    schedule = epoch_schedule(
        mini_app.warmup_iters, mini_app.total_iters, mini_app.iters_per_epoch
    )
    return mini_app, schedule, curve


class TestFanout:
    def test_single_consumer_matches_plain_run(self, setup):
        app, schedule, curve = setup
        result = run_fanout(app, schedule, curve, n_consumers=1)
        assert len(result.per_consumer_cil) == 1
        assert result.total_cil == pytest.approx(
            result.per_consumer_cil["consumer-0"]
        )

    def test_consumers_identical_streams(self, setup):
        app, schedule, curve = setup
        result = run_fanout(app, schedule, curve, n_consumers=3)
        values = list(result.per_consumer_cil.values())
        assert all(v == pytest.approx(values[0]) for v in values)
        assert result.total_cil == pytest.approx(sum(values))

    def test_producer_overhead_independent_of_fanout(self, setup):
        app, schedule, curve = setup
        one = run_fanout(app, schedule, curve, n_consumers=1)
        four = run_fanout(app, schedule, curve, n_consumers=4)
        assert one.training_overhead == pytest.approx(four.training_overhead)

    def test_invalid_consumer_count(self, setup):
        app, schedule, curve = setup
        with pytest.raises(WorkflowError):
            run_fanout(app, schedule, curve, n_consumers=0)

    def test_heterogeneous_rates(self, setup):
        """A slower consumer spreads its M requests over more wall time,
        so more of them see fresher models -> lower CIL per replica."""
        app, schedule, curve = setup
        result = run_fanout(
            app, schedule, curve, n_consumers=2,
            consumer_rates=[app.timing.t_infer, app.timing.t_infer * 4],
        )
        fast = result.per_consumer_cil["consumer-0"]
        slow = result.per_consumer_cil["consumer-1"]
        assert slow < fast

    def test_rates_length_validated(self, setup):
        app, schedule, curve = setup
        with pytest.raises(WorkflowError):
            run_fanout(
                app, schedule, curve, n_consumers=2, consumer_rates=[0.01]
            )


class TestSharded:
    def test_sharding_reduces_stall(self, setup):
        app, schedule, curve = setup
        whole = run_sharded(app, schedule, curve, n_shards=1)
        quarters = run_sharded(app, schedule, curve, n_shards=4)
        assert quarters.training_overhead < whole.training_overhead

    def test_sharding_does_not_increase_cil(self, setup):
        app, schedule, curve = setup
        whole = run_sharded(app, schedule, curve, n_shards=1)
        halves = run_sharded(app, schedule, curve, n_shards=2)
        assert halves.total_cil <= whole.total_cil * 1.001

    def test_checkpoint_count_unchanged(self, setup):
        app, schedule, curve = setup
        result = run_sharded(app, schedule, curve, n_shards=4)
        assert result.checkpoints == schedule.num_checkpoints

    def test_invalid_shard_count(self, setup):
        app, schedule, curve = setup
        with pytest.raises(WorkflowError):
            run_sharded(app, schedule, curve, n_shards=0)
