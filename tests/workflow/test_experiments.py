"""Experiment-driver tests (the functions behind the benchmark harness)."""

import numpy as np
import pytest

from repro.errors import WorkflowError
from repro.core.transfer.strategies import CaptureMode, TransferStrategy
from repro.workflow.experiments import (
    make_adapter,
    make_cil_params,
    measured_loss_curve,
    run_schedule_comparison,
    run_strategy_comparison,
    schedules_for_app,
    stretch_curve,
)
from tests.conftest import exp3_curve


class TestStretchCurve:
    def test_preserves_endpoints(self):
        curve = np.array([3.0, 2.0, 1.0])
        stretched = stretch_curve(curve, 30)
        assert stretched[0] == pytest.approx(3.0)
        assert stretched[-1] == pytest.approx(1.0)
        assert stretched.shape == (30,)

    def test_identity_when_same_length(self):
        curve = np.linspace(2, 1, 10)
        np.testing.assert_allclose(stretch_curve(curve, 10), curve)

    def test_monotone_preserved(self):
        curve = np.linspace(5, 1, 7)
        stretched = stretch_curve(curve, 50)
        assert np.all(np.diff(stretched) <= 0)

    def test_validation(self):
        with pytest.raises(WorkflowError):
            stretch_curve([1.0], 10)
        with pytest.raises(WorkflowError):
            stretch_curve([1.0, 0.5], 1)


class TestMeasuredCurve:
    def test_curve_has_paper_scale_length(self, mini_app):
        curve = measured_loss_curve(mini_app, scale=0.5, seed=1)
        assert curve.shape == (mini_app.total_iters,)

    def test_curve_decreases_overall(self, mini_app):
        curve = measured_loss_curve(mini_app, scale=1.0, seed=1)
        assert curve[-1] < curve[0]

    def test_smoothing_reduces_jitter(self, mini_app):
        raw = measured_loss_curve(mini_app, scale=1.0, seed=1, smooth=0)
        smooth = measured_loss_curve(mini_app, scale=1.0, seed=1, smooth=31)
        assert np.abs(np.diff(smooth)).mean() < np.abs(np.diff(raw)).mean()


class TestCilParams:
    def test_params_from_app_and_strategy(self, mini_app):
        params = make_cil_params(mini_app, TransferStrategy.GPU_TO_GPU)
        assert params.t_train == mini_app.timing.t_train
        assert params.t_infer == mini_app.timing.t_infer
        assert params.t_p > 0 and params.t_c > 0

    def test_pfs_costs_exceed_gpu(self, mini_app):
        gpu = make_cil_params(mini_app, TransferStrategy.GPU_TO_GPU)
        pfs = make_cil_params(
            mini_app, TransferStrategy.PFS, mode=CaptureMode.SYNC
        )
        assert pfs.t_p > gpu.t_p
        assert pfs.t_c > gpu.t_c


class TestSchedulesForApp:
    def test_three_schedules(self, mini_app):
        curve = exp3_curve(mini_app.total_iters, a=3.0, b=0.02, c=0.3, noise=0.02)
        schedules = schedules_for_app(mini_app, curve)
        assert set(schedules) == {"baseline", "fixed", "adaptive"}
        assert schedules["baseline"].kind == "epoch"
        assert schedules["fixed"].kind == "fixed"
        assert schedules["adaptive"].kind == "greedy"

    def test_curve_shorter_than_warmup_rejected(self, mini_app):
        with pytest.raises(WorkflowError):
            schedules_for_app(mini_app, [1.0, 0.9])


class TestComparisons:
    def test_schedule_comparison_shape(self, mini_app):
        curve = exp3_curve(mini_app.total_iters, a=3.0, b=0.02, c=0.3, noise=0.02)
        results = run_schedule_comparison(mini_app, curve)
        assert set(results) == {"baseline", "fixed", "adaptive"}
        for result in results.values():
            assert result.inferences == mini_app.total_inferences

    def test_strategy_comparison_orderings(self, mini_app):
        curve = exp3_curve(mini_app.total_iters, a=3.0, b=0.05, c=0.2)
        results = run_strategy_comparison(mini_app, curve)
        assert set(results) == {"gpu", "host", "pfs"}
        assert (
            results["gpu"].training_overhead
            < results["host"].training_overhead
            < results["pfs"].training_overhead
        )
        assert results["gpu"].cil <= results["pfs"].cil

    def test_adapter_factory(self, mini_app):
        adapter = make_adapter(mini_app)
        assert adapter.warmup_iters == mini_app.warmup_iters
        assert adapter.end_iter == mini_app.total_iters
