"""Consumer simulation: CIL accounting and latest-wins loading."""

import numpy as np
import pytest

from repro.errors import WorkflowError
from repro.substrates.simclock import EventLoop
from repro.workflow.consumer import ConsumerSim, VersionSwitch, cil_from_switches
from repro.workflow.producer import CheckpointAnnouncement
from repro.workflow.trace import Trace


def sw(time, version, loss):
    return VersionSwitch(time=time, version=version, iteration=version * 10, loss=loss)


class TestCILFromSwitches:
    def test_single_model(self):
        cil, counts = cil_from_switches([sw(0.0, 0, 2.0)], t_infer=0.1, total_inferences=10)
        assert cil == pytest.approx(20.0)
        assert counts.tolist() == [10]

    def test_split_between_models(self):
        switches = [sw(0.0, 0, 2.0), sw(0.55, 1, 1.0)]
        # requests at 0.0..0.9; 0.0-0.5 -> v0 (6 requests), 0.6.. -> v1 (4)
        cil, counts = cil_from_switches(switches, 0.1, 10)
        assert counts.tolist() == [6, 4]
        assert cil == pytest.approx(6 * 2.0 + 4 * 1.0)

    def test_request_exactly_at_switch_uses_new_model(self):
        switches = [sw(0.0, 0, 2.0), sw(0.5, 1, 1.0)]
        _cil, counts = cil_from_switches(switches, 0.5, 3)  # at 0.0, 0.5, 1.0
        assert counts.tolist() == [1, 2]

    def test_conservation_of_inferences(self):
        rng = np.random.default_rng(0)
        times = np.sort(rng.uniform(0, 100, 20))
        switches = [sw(0.0, 0, 1.0)] + [
            sw(t, i + 1, 1.0 / (i + 2)) for i, t in enumerate(times)
        ]
        _cil, counts = cil_from_switches(switches, 0.01, 12_345)
        assert counts.sum() == 12_345

    def test_zero_requests(self):
        cil, counts = cil_from_switches([sw(0.0, 0, 1.0)], 0.1, 0)
        assert cil == 0.0 and counts.tolist() == [0]

    def test_requests_before_first_model_rejected(self):
        with pytest.raises(WorkflowError):
            cil_from_switches([sw(5.0, 0, 1.0)], 0.1, 10)

    def test_unordered_switches_rejected(self):
        with pytest.raises(WorkflowError):
            cil_from_switches([sw(1.0, 0, 1.0), sw(0.5, 1, 0.5)], 0.1, 10)

    def test_empty_switches_rejected(self):
        with pytest.raises(WorkflowError):
            cil_from_switches([], 0.1, 10)

    def test_invalid_rate(self):
        with pytest.raises(WorkflowError):
            cil_from_switches([sw(0.0, 0, 1.0)], 0.0, 10)


def ann(version, loss=0.5, iteration=None):
    return CheckpointAnnouncement(
        version=version,
        iteration=iteration if iteration is not None else version * 10,
        loss=loss,
        delivered_at=0.0,
    )


class TestConsumerSim:
    def test_initial_model_is_switch_zero(self):
        loop = EventLoop()
        consumer = ConsumerSim(loop, Trace(), t_load=0.1, initial_loss=1.5)
        assert consumer.switches[0].loss == 1.5
        assert consumer.current_version == 0

    def test_load_takes_t_load(self):
        loop = EventLoop()
        consumer = ConsumerSim(loop, Trace(), t_load=0.25, initial_loss=1.0)
        loop.schedule_at(1.0, lambda: consumer.on_notify(ann(1)))
        loop.run()
        assert consumer.switches[-1].time == pytest.approx(1.25)
        assert consumer.current_version == 1

    def test_stale_notification_ignored(self):
        loop = EventLoop()
        consumer = ConsumerSim(loop, Trace(), t_load=0.1, initial_loss=1.0)
        loop.schedule_at(1.0, lambda: consumer.on_notify(ann(1)))
        loop.run()
        consumer.on_notify(ann(0))
        consumer.on_notify(ann(1))
        assert consumer.loads_superseded == 2
        assert len(consumer.switches) == 2

    def test_latest_wins_while_loading(self):
        loop = EventLoop()
        consumer = ConsumerSim(loop, Trace(), t_load=1.0, initial_loss=1.0)
        loop.schedule_at(0.0, lambda: consumer.on_notify(ann(1)))
        # v2 and v3 arrive while v1 is loading; only v3 loads afterwards.
        loop.schedule_at(0.2, lambda: consumer.on_notify(ann(2)))
        loop.schedule_at(0.4, lambda: consumer.on_notify(ann(3)))
        loop.run()
        versions = [s.version for s in consumer.switches]
        assert versions == [0, 1, 3]
        assert consumer.loads_superseded == 1  # v2 was dropped

    def test_out_of_order_notifications(self):
        loop = EventLoop()
        consumer = ConsumerSim(loop, Trace(), t_load=0.01, initial_loss=1.0)
        loop.schedule_at(0.0, lambda: consumer.on_notify(ann(2)))
        loop.schedule_at(0.5, lambda: consumer.on_notify(ann(1)))  # stale
        loop.run()
        assert consumer.current_version == 2
        assert consumer.loads_started == 1

    def test_trace_causality(self):
        loop = EventLoop()
        trace = Trace()
        consumer = ConsumerSim(loop, trace, t_load=0.5, initial_loss=1.0)
        loop.schedule_at(1.0, lambda: consumer.on_notify(ann(1)))
        loop.run()
        begin = trace.last("load_begin")
        done = trace.last("load_done")
        swap = trace.last("swap")
        assert begin.time <= done.time <= swap.time
        assert done.time - begin.time == pytest.approx(0.5)

    def test_negative_load_time_rejected(self):
        with pytest.raises(WorkflowError):
            ConsumerSim(EventLoop(), Trace(), t_load=-0.1, initial_loss=1.0)


class TestStalenessWatchdog:
    def test_invalid_deadline(self):
        with pytest.raises(WorkflowError):
            ConsumerSim(
                EventLoop(), Trace(), t_load=0.1, initial_loss=1.0,
                staleness_deadline=0.0,
            )

    def test_fallback_poll_discovers_missed_version(self):
        # The producer "publishes" v1 but the push never arrives; the
        # watchdog's fallback poll finds it after the deadline.
        loop = EventLoop()
        trace = Trace()
        missed = [ann(1)]
        consumer = ConsumerSim(
            loop, trace, t_load=0.1, initial_loss=1.0,
            staleness_deadline=2.0,
            poll_fn=lambda: missed.pop() if missed else None,
        )
        loop.run()
        assert consumer.stale_fallbacks >= 1
        assert consumer.current_version == 1
        events = [e.kind for e in trace.events()]
        assert "stale_fallback" in events
        # The fallback's load is a normal load: begin/done/swap traced.
        assert "swap" in events

    def test_push_activity_rearms_watchdog(self):
        # Pushes at 1.0 and 2.0 with a 3.0 deadline: no fallback fires
        # between them — only the trailing silence after the last load
        # triggers the (empty-handed) final poll.
        loop = EventLoop()
        polls = []

        def poll_fn():
            polls.append(loop.clock.now())
            return None

        consumer = ConsumerSim(
            loop, Trace(), t_load=0.1, initial_loss=1.0,
            staleness_deadline=3.0, poll_fn=poll_fn,
        )
        loop.schedule_at(1.0, lambda: consumer.on_notify(ann(1)))
        loop.schedule_at(2.0, lambda: consumer.on_notify(ann(2)))
        loop.run()
        assert consumer.current_version == 2
        # Exactly one fallback: the one after all activity stopped, a
        # full deadline past the last load completion (2.0 + 0.1 + 3.0).
        assert consumer.stale_fallbacks == 1
        assert polls == [pytest.approx(5.1)]
