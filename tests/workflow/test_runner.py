"""Coupled-run orchestration tests."""

import pytest

from repro.errors import WorkflowError
from repro.core.predictor.schedules import Schedule, epoch_schedule
from repro.core.transfer.strategies import CaptureMode, TransferStrategy
from repro.workflow.runner import CoupledRunConfig, loss_curve_lookup, run_coupled
from tests.conftest import exp3_curve


def make_config(mini_app, **overrides):
    curve = exp3_curve(mini_app.total_iters, a=3.0, b=0.05, c=0.2)
    schedule = epoch_schedule(
        mini_app.warmup_iters, mini_app.total_iters, mini_app.iters_per_epoch
    )
    base = dict(
        app=mini_app,
        schedule=schedule,
        loss_curve=curve,
        strategy=TransferStrategy.GPU_TO_GPU,
        mode=CaptureMode.ASYNC,
    )
    base.update(overrides)
    return CoupledRunConfig(**base)


class TestLossCurveLookup:
    def test_sequence_is_one_indexed(self):
        lookup = loss_curve_lookup([5.0, 4.0, 3.0])
        assert lookup(1) == 5.0
        assert lookup(3) == 3.0

    def test_clamps_out_of_range(self):
        lookup = loss_curve_lookup([5.0, 4.0])
        assert lookup(0) == 5.0
        assert lookup(100) == 4.0

    def test_callable_passthrough(self):
        def fn(i):
            return float(i)

        assert loss_curve_lookup(fn) is fn

    def test_empty_curve_rejected(self):
        with pytest.raises(WorkflowError):
            loss_curve_lookup([])


class TestRunCoupled:
    def test_basic_run(self, mini_app):
        result = run_coupled(make_config(mini_app))
        assert result.inferences == mini_app.total_inferences
        assert result.checkpoints == mini_app.epochs - mini_app.warmup_epochs
        assert result.cil > 0
        assert result.per_version_inferences.sum() == result.inferences

    def test_more_updates_lower_cil_on_decaying_curve(self, mini_app):
        rare = Schedule(
            "fixed", (mini_app.total_iters,), interval=mini_app.total_iters,
            start_iter=mini_app.warmup_iters, end_iter=mini_app.total_iters,
        )
        often = epoch_schedule(
            mini_app.warmup_iters, mini_app.total_iters, mini_app.iters_per_epoch
        )
        cil_rare = run_coupled(make_config(mini_app, schedule=rare)).cil
        cil_often = run_coupled(make_config(mini_app, schedule=often)).cil
        assert cil_often < cil_rare

    def test_faster_transfer_lower_cil(self, mini_app):
        gpu = run_coupled(
            make_config(mini_app, strategy=TransferStrategy.GPU_TO_GPU)
        )
        pfs = run_coupled(
            make_config(
                mini_app, strategy=TransferStrategy.PFS, mode=CaptureMode.SYNC
            )
        )
        assert gpu.cil < pfs.cil
        assert gpu.training_overhead < pfs.training_overhead

    def test_polling_discovery_increases_cil(self, mini_app):
        push = run_coupled(make_config(mini_app)).cil
        poll = run_coupled(make_config(mini_app, poll_interval=5.0)).cil
        assert poll >= push

    def test_switch_timeline_monotone(self, mini_app):
        result = run_coupled(make_config(mini_app))
        times = [s.time for s in result.switches]
        versions = [s.version for s in result.switches]
        assert times == sorted(times)
        assert versions == sorted(versions)

    def test_losses_match_curve_at_iterations(self, mini_app):
        curve = exp3_curve(mini_app.total_iters, a=3.0, b=0.05, c=0.2)
        result = run_coupled(make_config(mini_app, loss_curve=curve))
        for switch in result.switches[1:]:
            assert switch.loss == pytest.approx(curve[switch.iteration - 1])

    def test_sync_mode_runs(self, mini_app):
        result = run_coupled(make_config(mini_app, mode=CaptureMode.SYNC))
        assert result.checkpoints > 0

    def test_invalid_total_inferences(self, mini_app):
        with pytest.raises(WorkflowError):
            run_coupled(make_config(mini_app, total_inferences=0))

    def test_mean_inference_loss(self, mini_app):
        result = run_coupled(make_config(mini_app))
        assert result.mean_inference_loss == pytest.approx(
            result.cil / result.inferences
        )

    def test_trace_has_producer_and_consumer_events(self, mini_app):
        result = run_coupled(make_config(mini_app))
        kinds = {e.kind for e in result.trace}
        assert {"iteration", "ckpt_begin", "load_begin", "swap"} <= kinds


class TestAdapterRun:
    def test_adapter_drives_checkpoints(self, mini_app):
        from repro.workflow.experiments import make_adapter

        adapter = make_adapter(mini_app)
        schedule = Schedule(
            "adaptive", (), start_iter=mini_app.warmup_iters,
            end_iter=mini_app.total_iters,
        )
        result = run_coupled(
            make_config(mini_app, schedule=schedule, adapter=adapter)
        )
        assert result.checkpoints == len(adapter.checkpoints)
        assert result.checkpoints > 0
