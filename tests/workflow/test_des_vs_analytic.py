"""Cross-validation: the DES and Algorithm 1's analytic walk must agree.

For synchronous fixed-interval runs with zero notification latency, the
discrete-event simulation and `walk_fixed_interval` (Algorithm 2's inner
loop) describe the same timeline, so their CIL accounting must match
*exactly*.  A divergence means one of the two models drifted — this test
pins them together.
"""

import pytest

from repro.substrates.cost import Cost
from repro.substrates.simclock import EventLoop
from repro.core.predictor.cilp import CILParams
from repro.core.predictor.schedules import Schedule, walk_fixed_interval
from repro.core.transfer.strategies import CaptureMode, StrategyTimings, TransferStrategy
from repro.workflow.consumer import ConsumerSim
from repro.workflow.producer import ProducerSim
from repro.workflow.trace import Trace


def run_des(interval, end_iter, total_infers, loss_pred, params):
    """Sync fixed-interval DES run mirroring the analytic assumptions."""
    timings = StrategyTimings(
        strategy=TransferStrategy.GPU_TO_GPU,
        mode=CaptureMode.SYNC,
        stall=Cost.of("stall", params.t_p),
        deliver=Cost.zero(),
        load=Cost.of("load", params.t_c),
    )
    schedule = Schedule(
        "fixed",
        tuple(range(interval, end_iter + 1, interval)),
        interval=interval,
        start_iter=0,
        end_iter=end_iter,
    )
    loop = EventLoop()
    trace = Trace()
    consumer = ConsumerSim(
        loop, trace, t_load=params.t_c,
        initial_loss=loss_pred(0), initial_iteration=0,
    )
    producer = ProducerSim(
        loop,
        trace,
        schedule=schedule,
        timings=timings,
        t_train=params.t_train,
        total_iters=end_iter,
        start_iter=0,
        loss_at=loss_pred,
        notify_latency=0.0,
        on_notify=consumer.on_notify,
    )
    producer.start()
    loop.run()
    cil, counts = consumer.cumulative_inference_loss(params.t_infer, total_infers)
    return cil, counts


@pytest.mark.parametrize("interval", [1, 3, 7, 20])
@pytest.mark.parametrize(
    "params",
    [
        # Dyadic constants are exactly representable, so window
        # boundaries land identically in both models -> exact equality.
        CILParams(t_train=0.125, t_p=0.0625, t_c=0.03125, t_infer=0.00390625),
        CILParams(t_train=0.0625, t_p=0.25, t_c=0.125, t_infer=0.00390625),
    ],
    ids=["light-stall", "heavy-stall"],
)
def test_des_matches_algorithm1_walk_exactly(interval, params):
    end_iter = 100
    total_infers = 5_000
    def loss_pred(i):
        return max(0.1, 3.0 - 0.02 * i)


    analytic_cil, _its = walk_fixed_interval(
        interval, 0, end_iter, total_infers, loss_pred, params
    )
    des_cil, counts = run_des(interval, end_iter, total_infers, loss_pred, params)
    assert counts.sum() == total_infers
    assert des_cil == pytest.approx(analytic_cil, rel=1e-9)


@pytest.mark.parametrize("interval", [1, 3, 7, 20])
def test_des_matches_walk_within_boundary_noise(interval):
    """With generic decimal constants, float rounding shifts a request
    across a window boundary occasionally; agreement must still hold to
    a fraction of a percent."""
    params = CILParams(t_train=0.1, t_p=0.05, t_c=0.03, t_infer=0.01)
    def loss_pred(i):
        return max(0.1, 3.0 - 0.02 * i)

    analytic_cil, _ = walk_fixed_interval(interval, 0, 100, 5_000, loss_pred, params)
    des_cil, _ = run_des(interval, 100, 5_000, loss_pred, params)
    assert des_cil == pytest.approx(analytic_cil, rel=2e-3)


def test_divergence_when_assumptions_break():
    """Sanity: with notification latency the two models *should* differ
    (the analytic walk has no notion of it) — confirming the agreement
    above is not vacuous."""
    params = CILParams(t_train=0.1, t_p=0.05, t_c=0.03, t_infer=0.01)
    def loss_pred(i):
        return max(0.1, 3.0 - 0.02 * i)

    analytic_cil, _ = walk_fixed_interval(5, 0, 100, 5_000, loss_pred, params)

    timings = StrategyTimings(
        strategy=TransferStrategy.GPU_TO_GPU,
        mode=CaptureMode.SYNC,
        stall=Cost.of("stall", params.t_p),
        deliver=Cost.zero(),
        load=Cost.of("load", params.t_c),
    )
    schedule = Schedule(
        "fixed", tuple(range(5, 101, 5)), interval=5, start_iter=0, end_iter=100
    )
    loop = EventLoop()
    consumer = ConsumerSim(
        loop, Trace(), t_load=params.t_c, initial_loss=loss_pred(0)
    )
    producer = ProducerSim(
        loop,
        Trace(),
        schedule=schedule,
        timings=timings,
        t_train=params.t_train,
        total_iters=100,
        start_iter=0,
        loss_at=loss_pred,
        notify_latency=0.3,  # three iterations' worth of discovery delay
        on_notify=consumer.on_notify,
    )
    producer.start()
    loop.run()
    delayed_cil, _ = consumer.cumulative_inference_loss(params.t_infer, 5_000)
    assert delayed_cil > analytic_cil
