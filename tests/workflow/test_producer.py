"""Producer simulation: iteration timing, stalls, async pipeline."""

import pytest

from repro.substrates.cost import Cost
from repro.substrates.simclock import EventLoop
from repro.core.predictor.schedules import Schedule
from repro.core.transfer.strategies import CaptureMode, StrategyTimings, TransferStrategy
from repro.workflow.producer import ProducerSim
from repro.workflow.trace import Trace


def make_timings(stall=0.5, deliver=0.0, load=0.2, mode=CaptureMode.SYNC):
    return StrategyTimings(
        strategy=TransferStrategy.GPU_TO_GPU,
        mode=mode,
        stall=Cost.of("stall", stall),
        deliver=Cost.of("deliver", deliver) if deliver else Cost.zero(),
        load=Cost.of("load", load),
    )


def run_producer(schedule, timings, t_train=1.0, total=None, start=0,
                 notify_latency=0.0):
    loop = EventLoop()
    trace = Trace()
    notifications = []
    producer = ProducerSim(
        loop,
        trace,
        schedule=schedule,
        timings=timings,
        t_train=t_train,
        total_iters=total if total is not None else schedule.end_iter,
        start_iter=start,
        loss_at=lambda i: 1.0 / (1 + i),
        notify_latency=notify_latency,
        on_notify=lambda ann: notifications.append(
            (loop.clock.now(), ann.version, ann.iteration)
        ),
    )
    producer.start()
    loop.run()
    return producer, notifications, trace, loop


class TestSyncProducer:
    def test_training_time_without_checkpoints(self):
        schedule = Schedule("epoch", (), start_iter=0, end_iter=10)
        producer, notes, _trace, loop = run_producer(schedule, make_timings())
        assert producer.training_end_time == pytest.approx(10.0)
        assert notes == []
        assert producer.training_overhead == 0.0

    def test_stall_extends_training(self):
        schedule = Schedule("fixed", (5,), interval=5, start_iter=0, end_iter=10)
        producer, notes, _trace, _loop = run_producer(schedule, make_timings(stall=0.5))
        assert producer.training_end_time == pytest.approx(10.5)
        assert producer.training_overhead == pytest.approx(0.5)

    def test_sync_notification_at_stall_end(self):
        schedule = Schedule("fixed", (5,), interval=5, start_iter=0, end_iter=10)
        _producer, notes, _trace, _loop = run_producer(schedule, make_timings(stall=0.5))
        (t, version, iteration), = notes
        assert t == pytest.approx(5.5)
        assert version == 1 and iteration == 5

    def test_notify_latency_applied(self):
        schedule = Schedule("fixed", (5,), interval=5, start_iter=0, end_iter=10)
        _p, notes, _t, _l = run_producer(
            schedule, make_timings(stall=0.5), notify_latency=0.01
        )
        assert notes[0][0] == pytest.approx(5.51)

    def test_versions_sequence(self):
        schedule = Schedule("fixed", (2, 4, 6), interval=2, start_iter=0, end_iter=6)
        producer, notes, _t, _l = run_producer(schedule, make_timings(stall=0.1))
        assert [v for (_t2, v, _i) in notes] == [1, 2, 3]
        assert producer.checkpoints_completed == 3

    def test_start_iter_offset(self):
        schedule = Schedule("fixed", (12,), interval=2, start_iter=10, end_iter=14)
        producer, notes, _t, _l = run_producer(schedule, make_timings(stall=0.0), start=10)
        # 4 iterations of 1s each
        assert producer.training_end_time == pytest.approx(4.0)
        assert notes[0][2] == 12


class TestAsyncProducer:
    def test_stall_excludes_delivery(self):
        schedule = Schedule("fixed", (5,), interval=5, start_iter=0, end_iter=10)
        timings = make_timings(stall=0.1, deliver=2.0, mode=CaptureMode.ASYNC)
        producer, notes, _t, _l = run_producer(schedule, timings)
        assert producer.training_end_time == pytest.approx(10.1)
        # Notification only after the background delivery completes.
        assert notes[0][0] == pytest.approx(5.1 + 2.0)

    def test_backlogged_deliveries_supersede(self):
        # Checkpoints every iteration, each delivery takes 5 iterations'
        # worth of time: the engine keeps only the newest pending.
        its = tuple(range(1, 9))
        schedule = Schedule("fixed", its, interval=1, start_iter=0, end_iter=8)
        timings = make_timings(stall=0.01, deliver=5.0, mode=CaptureMode.ASYNC)
        producer, notes, _t, _l = run_producer(schedule, timings)
        delivered = [v for (_t2, v, _i) in notes]
        assert len(delivered) < 8
        assert producer.superseded > 0
        assert delivered == sorted(delivered)
        assert delivered[-1] == 8  # newest version always ships eventually

    def test_no_supersede_when_engine_keeps_up(self):
        its = (3, 6, 9)
        schedule = Schedule("fixed", its, interval=3, start_iter=0, end_iter=9)
        timings = make_timings(stall=0.01, deliver=0.5, mode=CaptureMode.ASYNC)
        producer, notes, _t, _l = run_producer(schedule, timings)
        assert producer.superseded == 0
        assert len(notes) == 3


class TestTrace:
    def test_iteration_events_recorded(self):
        schedule = Schedule("epoch", (), start_iter=0, end_iter=3)
        _p, _n, trace, _l = run_producer(schedule, make_timings())
        assert len(trace.events("iteration")) == 3
        assert trace.events("train_end")

    def test_checkpoint_events_order(self):
        schedule = Schedule("fixed", (2,), interval=2, start_iter=0, end_iter=4)
        _p, _n, trace, _l = run_producer(schedule, make_timings(stall=0.5))
        begin = trace.last("ckpt_begin")
        end = trace.last("ckpt_stall_end")
        assert end.time - begin.time == pytest.approx(0.5)
