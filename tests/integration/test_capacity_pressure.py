"""Capacity-pressure integration: selector fallback + eviction recovery.

Uses the LAPTOP hardware profile (256 MB GPU staging, 1 GB DRAM) so a
handful of checkpoints exercises the selector's fallback ladder and the
tier stores' eviction under realistic pressure.
"""

import pytest

from repro import CaptureMode, TransferStrategy, Viper
from repro.substrates.cost import MB
from repro.substrates.profiles import LAPTOP
from repro.dnn.layers import Dense
from repro.dnn.models import Sequential


def tiny_state():
    return Sequential([Dense(2, name="d")], input_shape=(3,), seed=1).state_dict()


class TestSelectorFallbackLadder:
    def test_strategy_degrades_with_model_size(self):
        with Viper(profile=LAPTOP) as viper:
            state = tiny_state()
            small = viper.save_weights(
                "small", state, mode=CaptureMode.SYNC, virtual_bytes=50 * MB
            )
            medium = viper.save_weights(
                "medium", state, mode=CaptureMode.SYNC, virtual_bytes=200 * MB
            )
            large = viper.save_weights(
                "large", state, mode=CaptureMode.SYNC, virtual_bytes=600 * MB
            )
            assert small.strategy is TransferStrategy.GPU_TO_GPU
            assert medium.strategy is TransferStrategy.HOST_TO_HOST
            assert large.strategy is TransferStrategy.PFS

    def test_all_sizes_remain_loadable(self):
        with Viper(profile=LAPTOP) as viper:
            state = tiny_state()
            for name, nbytes in [("a", 50 * MB), ("b", 200 * MB), ("c", 600 * MB)]:
                viper.save_weights(
                    name, state, mode=CaptureMode.SYNC, virtual_bytes=nbytes
                )
            for name in ("a", "b", "c"):
                assert viper.load_weights(name).version == 1


class TestEvictionUnderPressure:
    def test_old_versions_evicted_new_ones_stay(self):
        """Six 60 MB checkpoints into a 256 MB GPU tier: the oldest
        versions must be evicted, the newest must survive and load."""
        with Viper(profile=LAPTOP) as viper:
            state = tiny_state()
            for _ in range(6):
                viper.save_weights(
                    "m", state,
                    mode=CaptureMode.SYNC,
                    strategy=TransferStrategy.GPU_TO_GPU,
                    virtual_bytes=60 * MB,
                )
            store = viper.consumer_node.gpu
            assert store.used_bytes <= store.spec.capacity_bytes
            assert len(store.eviction_log) >= 2
            assert viper.load_weights("m").version == 6

    def test_evicted_version_recovers_from_pfs_when_flushed(self):
        with Viper(profile=LAPTOP, flush_history=True) as viper:
            state = tiny_state()
            for _ in range(6):
                viper.save_weights(
                    "m", state,
                    mode=CaptureMode.SYNC,
                    strategy=TransferStrategy.GPU_TO_GPU,
                    virtual_bytes=60 * MB,
                )
            viper.drain()
            # v1 was evicted from GPU staging but survives on the PFS.
            loaded = viper.load_weights("m", version=1)
            assert loaded.location == "pfs"
            assert viper.handler.stats.fallbacks >= 1

    def test_evicted_version_lost_without_flush(self):
        with Viper(profile=LAPTOP, flush_history=False) as viper:
            state = tiny_state()
            for _ in range(6):
                viper.save_weights(
                    "m", state,
                    mode=CaptureMode.SYNC,
                    strategy=TransferStrategy.GPU_TO_GPU,
                    virtual_bytes=60 * MB,
                )
            with pytest.raises(Exception):
                viper.load_weights("m", version=1)
            assert viper.handler.stats.misses >= 1
