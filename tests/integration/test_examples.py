"""Every example script runs to completion (smoke-level integration).

The examples are part of the public deliverable; a refactor that breaks
one must fail CI.  Each runs in a subprocess with the repo's source on
the path, shrunk via the ``VIPER_EXAMPLE_SCALE`` env override every
training example honours — so even ``schedule_comparison.py`` (which
trains TC1 and replays the full DES timeline) fits in a smoke budget.
"""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"

#: Per-example dataset-scale multiplier for smoke runs.  0.5 halves the
#: (already reduced) documented scales; schedule_comparison gets a deeper
#: cut because it both trains TC1 and replays the DES timeline, whose
#: length follows the epoch budget.
SMOKE_SCALE = {
    "quickstart.py": "0.5",
    "polling_vs_push.py": "0.5",
    "candle_drug_response.py": "0.5",
    "fault_tolerance.py": "0.5",
    "incremental_finetuning.py": "0.5",
    "multi_consumer.py": "0.5",
    "ptychographic_imaging.py": "0.5",
    "schedule_comparison.py": "0.2",
}


def run_example(name: str, timeout: float = 600.0):
    env = dict(os.environ)
    env["VIPER_EXAMPLE_SCALE"] = SMOKE_SCALE[name]
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )


@pytest.mark.parametrize("name", sorted(SMOKE_SCALE))
def test_example_runs(name):
    result = run_example(name)
    assert result.returncode == 0, (
        f"{name} failed:\nstdout:\n{result.stdout[-2000:]}\n"
        f"stderr:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{name} produced no output"


def test_example_list_is_complete():
    """Every example on disk is smoke-tested above."""
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(SMOKE_SCALE)
