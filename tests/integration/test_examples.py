"""Every example script runs to completion (smoke-level integration).

The examples are part of the public deliverable; a refactor that breaks
one must fail CI.  Each runs in a subprocess with the repo's source on
the path.  The slowest (schedule_comparison trains TC1) is marked for
exclusion in quick runs via ``-m "not slow"``.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "polling_vs_push.py",
    "candle_drug_response.py",
    "fault_tolerance.py",
    "incremental_finetuning.py",
    "multi_consumer.py",
    "ptychographic_imaging.py",
]


def run_example(name: str, timeout: float = 600.0):
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name):
    result = run_example(name)
    assert result.returncode == 0, (
        f"{name} failed:\nstdout:\n{result.stdout[-2000:]}\n"
        f"stderr:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{name} produced no output"


def test_example_list_is_complete():
    """Every example on disk is either smoke-tested here or known-slow."""
    known_slow = {"schedule_comparison.py"}
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(FAST_EXAMPLES) | known_slow
