"""Soak tests: long coupled runs, heavy version churn, bookkeeping exactness.

These runs are far larger than the paper's experiments (thousands of
checkpoints, hundreds of thousands of accounted inferences) and exist to
catch accumulation bugs — leaked events, drifting counters, version-set
inconsistencies — that short tests cannot.
"""

import numpy as np

from repro import CaptureMode, TransferStrategy, Viper
from repro.apps.registry import AppProfile, AppTiming
from repro.core.predictor.schedules import Schedule
from repro.core.transfer.retention import RetentionPolicy
from repro.core.transfer.strategies import CaptureMode as CM
from repro.dnn.layers import Dense
from repro.dnn.models import Sequential
from repro.substrates.cost import MB
from repro.workflow.runner import CoupledRunConfig, run_coupled
from tests.conftest import exp3_curve


def _data(n_train, n_test, seed):
    from repro.apps.datasets import make_expression_profiles

    return make_expression_profiles(n_train, n_test, 2, seed=seed)


def soak_app(total_iters=20_000, t_train=0.01, t_infer=0.002):
    from repro.apps.candle import build_nt3

    return AppProfile(
        name="soak",
        display_name="Soak",
        build_model=build_nt3,
        make_data=_data,
        loss_metric="cross_entropy",
        checkpoint_bytes=100 * MB,
        checkpoint_tensors=10,
        timing=AppTiming(t_train=t_train, t_infer=t_infer),
        n_train=2000,
        n_test=100,
        batch_size=20,
        epochs=total_iters // 100,
        warmup_epochs=1,
        total_inferences=500_000,
    )


class TestDESScale:
    def test_two_thousand_checkpoints_exact_accounting(self):
        app = soak_app()
        # A checkpoint every 10 iterations -> ~2000 checkpoints.
        schedule = Schedule(
            "fixed",
            tuple(range(110, app.total_iters + 1, 10)),
            interval=10,
            start_iter=100,
            end_iter=app.total_iters,
        )
        curve = exp3_curve(app.total_iters, a=3.0, b=0.0005, c=0.2)
        result = run_coupled(
            CoupledRunConfig(
                app=app,
                schedule=schedule,
                loss_curve=curve,
                strategy=TransferStrategy.GPU_TO_GPU,
                mode=CM.ASYNC,
            )
        )
        assert result.checkpoints + result.superseded >= schedule.num_checkpoints
        # Conservation: every one of the 500k inferences counted once.
        assert result.per_version_inferences.sum() == 500_000
        # Overhead decomposes exactly.
        per_stall = result.training_overhead / schedule.num_checkpoints
        assert per_stall > 0
        # Version switches strictly increase in time and version.
        times = [s.time for s in result.switches]
        versions = [s.version for s in result.switches]
        assert times == sorted(times)
        assert versions == sorted(set(versions))

    def test_event_loop_counters_consistent(self):
        app = soak_app(total_iters=5_000)
        schedule = Schedule(
            "fixed",
            tuple(range(150, app.total_iters + 1, 50)),
            interval=50,
            start_iter=100,
            end_iter=app.total_iters,
        )
        curve = exp3_curve(app.total_iters, a=2.0, b=0.001, c=0.3)
        result = run_coupled(
            CoupledRunConfig(
                app=app,
                schedule=schedule,
                loss_curve=curve,
                strategy=TransferStrategy.HOST_TO_HOST,
                mode=CM.ASYNC,
            )
        )
        iterations = len(result.trace.events("iteration"))
        assert iterations == app.total_iters - schedule.start_iter
        swaps = len(result.trace.events("swap"))
        assert swaps == len(result.switches) - 1  # minus the warm-up model


class TestLiveChurn:
    def test_hundreds_of_versions_with_gc(self):
        state = Sequential(
            [Dense(2, name="d")], input_shape=(3,), seed=1
        ).state_dict()
        with Viper(
            flush_history=True, retention=RetentionPolicy(keep_latest=5)
        ) as viper:
            for _ in range(300):
                viper.save_weights(
                    "churn", state,
                    mode=CaptureMode.ASYNC,
                    strategy=TransferStrategy.GPU_TO_GPU,
                    virtual_bytes=10 * MB,
                )
            viper.drain()
            latest, _ = viper.metadata.latest("churn")
            assert latest.version == 300
            versions = viper.metadata.versions("churn")
            assert 300 in versions and 1 in versions
            assert len(versions) <= 7  # root + latest 5 (+ boundary)
            # PFS holds exactly the retained versions' blobs.
            pfs_keys = [k for k in viper.cluster.pfs.keys() if k.startswith("churn/")]
            assert len(pfs_keys) == len(versions)
            assert viper.load_weights("churn").version == 300
