"""End-to-end lineage under fan-out with injected faults.

The acceptance scenario from the observability issue: one producer,
a broker, four live consumers, write faults hitting the fast tiers.
Every published version must reconstruct as a single causally-linked
trace — complete, gap-free, time-ordered — and the fleet report and
Prometheus exposition must cover every consumer, even though the
checkpoints only landed after retries and failovers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CaptureMode,
    FaultKind,
    FaultPlan,
    FaultRule,
    RetryPolicy,
    Viper,
)
from repro.dnn.layers import Dense
from repro.dnn.losses import MSELoss
from repro.dnn.models import Sequential
from repro.dnn.optimizers import SGD
from repro.obs import MetricsRegistry, prometheus_text
from repro.obs.freshness import FreshnessTracker, SLOTarget
from repro.obs.lineage import REQUIRED_STAGES, LifecycleLedger
from repro.serving.server import InferenceServer

N_CONSUMERS = 4
N_VERSIONS = 5
SERVES_PER_VERSION = 3

#: Writes to the fast tiers fail often; the PFS stays clean so the
#: failover chain always terminates (the chaos-suite assumption).
FAULT_RULES = [
    FaultRule(site="store.put:*hbm*", kind=FaultKind.WRITE_FAIL,
              probability=0.5),
    FaultRule(site="store.put:*ddr*", kind=FaultKind.WRITE_FAIL,
              probability=0.3),
]


def builder():
    model = Sequential([Dense(1, name="d")], input_shape=(2,), seed=3)
    model.compile(SGD(0.01), MSELoss())
    return model


@pytest.fixture(scope="module")
def fanout_run():
    """One faulty fan-out run shared by every assertion below."""
    metrics = MetricsRegistry()
    ledger = LifecycleLedger()
    fresh = FreshnessTracker(metrics=metrics, slo=SLOTarget(update_latency=60.0))
    plan = FaultPlan(FAULT_RULES, seed=20260807)
    with Viper(
        fault_plan=plan,
        retry_policy=RetryPolicy(max_attempts=6),
        flush_history=True,
        metrics=metrics,
        lineage=ledger,
        freshness=fresh,
    ) as viper:
        servers = []
        for i in range(N_CONSUMERS):
            consumer = viper.consumer(model_builder=builder, name=f"c{i}")
            consumer.subscribe()
            servers.append(
                InferenceServer(
                    consumer, "m", loss_fn=MSELoss(),
                    t_infer=0.01 * (i + 1), metrics=metrics,
                )
            )
        x = np.ones((1, 2), dtype=np.float32)
        y = np.zeros((1, 1), dtype=np.float32)
        state = builder().state_dict()
        for version in range(1, N_VERSIONS + 1):
            state["d/W"][...] = float(version)
            viper.save_weights("m", state, mode=CaptureMode.SYNC)
            for server in servers:
                server.poll_updates()
                for _ in range(SERVES_PER_VERSION):
                    server.handle(x, y_true=y)
        snap = viper.handler.stats.snapshot()
        yield {
            "ledger": ledger,
            "fresh": fresh,
            "metrics": metrics,
            "plan": plan,
            "stats": snap,
            "servers": servers,
        }


class TestCausalTraces:
    def test_every_version_has_a_complete_gap_free_ledger(self, fanout_run):
        ledger = fanout_run["ledger"]
        assert ledger.versions("m") == list(range(1, N_VERSIONS + 1))
        for version in ledger.versions("m"):
            assert ledger.complete("m", version), (
                version, ledger.missing_stages("m", version)
            )
            assert ledger.missing_stages("m", version) == ()

    def test_one_trace_id_links_all_actors_per_version(self, fanout_run):
        ledger = fanout_run["ledger"]
        for version in ledger.versions("m"):
            assert len(ledger.trace_ids("m", version)) == 1
            actors = {t.actor for t in ledger.lifecycle("m", version)}
            # producer-side stages plus every consumer replica
            assert {f"c{i}" for i in range(N_CONSUMERS)} <= actors

    def test_critical_path_is_causally_ordered(self, fanout_run):
        ledger = fanout_run["ledger"]
        for version in ledger.versions("m"):
            path = ledger.critical_path("m", version)
            # flush_history=True adds flush/load hops; the required
            # stages must still appear, in order, within the path.
            stages = [s.to_stage for s in path]
            it = iter(stages)
            assert all(stage in it for stage in REQUIRED_STAGES[1:]), stages
            assert all(s.duration >= 0 for s in path)
            ends = [s.end for s in path]
            assert ends == sorted(ends)
            assert ledger.end_to_end("m", version) >= 0

    def test_all_consumers_swapped_every_version(self, fanout_run):
        ledger = fanout_run["ledger"]
        expected = tuple(f"c{i}" for i in range(N_CONSUMERS))
        for version in ledger.versions("m"):
            assert ledger.consumers("m", version) == expected


class TestFaultsWereReal:
    def test_faults_injected_and_absorbed(self, fanout_run):
        assert fanout_run["plan"].injection_count(FaultKind.WRITE_FAIL) > 0
        stats = fanout_run["stats"]
        assert stats.retries + stats.failovers > 0

    def test_every_server_converged_to_latest(self, fanout_run):
        for server in fanout_run["servers"]:
            assert server.consumer.current_version == N_VERSIONS


class TestFleetAndMetrics:
    def test_fleet_report_covers_every_consumer(self, fanout_run):
        fresh = fanout_run["fresh"]
        rows = fresh.fleet("m")
        assert [r.consumer for r in rows] == [f"c{i}" for i in range(N_CONSUMERS)]
        for row in rows:
            assert row.current_version == N_VERSIONS
            assert row.version_lag == 0
            assert row.updates == N_VERSIONS
            assert row.serves == N_VERSIONS * SERVES_PER_VERSION
        assert fresh.latest_version("m") == N_VERSIONS

    def test_prometheus_exposition_includes_freshness_series(self, fanout_run):
        text = prometheus_text(fanout_run["metrics"])
        for name in (
            "viper_latest_published_version",
            "viper_consumer_version_lag",
            "viper_update_latency_sim_seconds",
        ):
            assert name in text

    def test_ledger_survives_jsonl_round_trip(self, fanout_run, tmp_path):
        from repro.obs.lineage import read_lineage_jsonl

        ledger = fanout_run["ledger"]
        path = str(tmp_path / "fanout-lineage.jsonl")
        assert ledger.write_jsonl(path) == len(ledger)
        back = read_lineage_jsonl(path)
        for version in ledger.versions("m"):
            assert back.complete("m", version)
            assert back.trace_ids("m", version) == ledger.trace_ids("m", version)
