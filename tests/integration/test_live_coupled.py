"""Live coupled run: true concurrency across the whole stack."""

import numpy as np
import pytest

from repro import CaptureMode, Viper
from repro.apps import get_app
from repro.dnn.losses import CrossEntropyLoss
from repro.errors import WorkflowError
from repro.serving.client import RequestGenerator
from repro.workflow.live import LiveCoupledRun


@pytest.fixture
def setup():
    app = get_app("nt3a")
    model = app.build_model()
    x, y, xt, yt = app.dataset(scale=0.25, seed=13)
    viper = Viper()
    run = LiveCoupledRun(
        viper,
        "nt3",
        model=model,
        model_builder=app.build_model,
        loss_fn=CrossEntropyLoss(),
        t_infer=app.timing.t_infer,
    )
    yield app, model, x, y, xt, yt, viper, run
    viper.close()


class TestLiveCoupledRun:
    def test_concurrent_train_and_serve(self, setup):
        app, model, x, y, xt, yt, viper, run = setup
        callback = viper.producer().checkpoint_callback(
            "nt3", interval=7, warmup_iters=7, mode=CaptureMode.ASYNC
        )
        requests = RequestGenerator(xt, yt, rate_t_infer=app.timing.t_infer)
        result = run.run(
            x, y, requests,
            total_requests=300,
            callback=callback,
            epochs=4,
            batch_size=20,
        )
        assert result.producer_error is None
        assert len(result.served) == 300
        assert len(result.checkpoints_taken) >= 2
        # The consumer picked up at least one mid-training update.
        assert result.updates_applied >= 1
        # Versions served never regress (atomic swaps, monotone versions).
        versions = result.versions_served
        assert all(b >= a for a, b in zip(versions, versions[1:]))

    def test_quality_improves_across_run(self, setup):
        app, model, x, y, xt, yt, viper, run = setup
        callback = viper.producer().checkpoint_callback(
            "nt3", interval=5, warmup_iters=5, mode=CaptureMode.ASYNC
        )
        requests = RequestGenerator(xt, yt, rate_t_infer=app.timing.t_infer)
        result = run.run(
            x, y, requests,
            total_requests=400,
            callback=callback,
            epochs=6,
            batch_size=20,
        )
        losses = [r.loss for r in result.served if np.isfinite(r.loss)]
        early = float(np.mean(losses[:80]))
        late = float(np.mean(losses[-80:]))
        # Later requests are served by fresher (better) models — unless
        # training raced ahead of serving entirely; require an update and
        # a non-degrading trend.
        assert result.updates_applied >= 1
        assert late <= early * 1.2

    def test_final_model_reaches_consumer(self, setup):
        app, model, x, y, xt, yt, viper, run = setup
        callback = viper.producer().checkpoint_callback(
            "nt3", interval=10, warmup_iters=0, mode=CaptureMode.ASYNC
        )
        requests = RequestGenerator(xt, yt, rate_t_infer=app.timing.t_infer)
        run.run(
            x, y, requests,
            total_requests=50,
            callback=callback,
            epochs=3,
            batch_size=20,
        )
        record, _ = viper.metadata.latest("nt3")
        assert run.consumer.current_version == record.version
        # The served model's weights equal the latest checkpoint's.
        live_state = run.consumer.current_model().state_dict()
        loaded = viper.load_weights("nt3")
        for key in loaded.state:
            np.testing.assert_array_equal(live_state[key], loaded.state[key])

    def test_invalid_request_count(self, setup):
        app, model, x, y, xt, yt, viper, run = setup
        callback = viper.producer().checkpoint_callback(
            "nt3", interval=10, warmup_iters=0
        )
        with pytest.raises(WorkflowError):
            run.run(
                x, y,
                RequestGenerator(xt, yt),
                total_requests=0,
                callback=callback,
                epochs=1,
                batch_size=20,
            )
