"""End-to-end delta transfer through the Viper facade.

The wire-level unit tests live in tests/core/test_delta.py; here the
whole stack runs — serialize, negotiate, frame, stage, fetch,
reconstruct, verify, swap — and the assertions are about what a
deployment observes: fewer bytes on the wire, bit-exact served weights,
and graceful degradation to the monolithic path when the delta
machinery loses its base.
"""

import numpy as np
import pytest

from repro import CaptureMode, TransferStrategy, Viper


def fleet_state(seed=0, n=8, shape=(64, 32)):
    rng = np.random.default_rng(seed)
    return {
        f"layer{i}": rng.standard_normal(shape).astype(np.float32)
        for i in range(n)
    }


def perturb(state, names, scale=1.0):
    out = {k: v.copy() for k, v in state.items()}
    for name in names:
        out[name] = out[name] + scale
    return out


class TestDeltaEndToEnd:
    def test_partial_update_ships_fraction_of_bytes(self):
        with Viper(delta=True) as viper:
            v1 = fleet_state()
            viper.save_weights(
                "m", v1, mode=CaptureMode.SYNC,
                strategy=TransferStrategy.HOST_TO_HOST,
            )
            viper.load_weights("m")  # registers the consumer-held base
            v2 = perturb(v1, ["layer0"])  # 1 of 8 tensors changed
            result = viper.save_weights(
                "m", v2, mode=CaptureMode.SYNC,
                strategy=TransferStrategy.HOST_TO_HOST,
            )
            # The record accounts the frame, not the full blob.
            assert 0 < result.record.wire_bytes < result.record.nbytes // 3
            loaded = viper.load_weights("m")
            assert loaded.version == 2
            for key in v2:
                np.testing.assert_array_equal(loaded.state[key], v2[key])
            snap = viper.handler.stats.snapshot()
            assert snap.bytes_on_wire < snap.bytes_total
            assert snap.delta_hits >= 1
            assert snap.dedup_hit_ratio > 0.5

    def test_missing_base_falls_back_to_monolithic(self):
        with Viper(delta=True) as viper:
            v1 = fleet_state(seed=1)
            viper.save_weights(
                "m", v1, mode=CaptureMode.SYNC,
                strategy=TransferStrategy.HOST_TO_HOST,
            )
            viper.load_weights("m")
            v2 = perturb(v1, ["layer1"])
            viper.save_weights(
                "m", v2, mode=CaptureMode.SYNC,
                strategy=TransferStrategy.HOST_TO_HOST,
            )
            # The consumer restarts: its held base is gone, but the
            # staged blob for v2 is a delta frame against v1.
            viper.handler.delta.forget_held("m")
            loaded = viper.load_weights("m")
            assert loaded.version == 2
            for key in v2:
                np.testing.assert_array_equal(loaded.state[key], v2[key])
            snap = viper.handler.stats.snapshot()
            assert snap.delta_fallbacks >= 1

    def test_pfs_strategy_always_ships_monolithic(self):
        with Viper(delta=True) as viper:
            v1 = fleet_state(seed=2)
            viper.save_weights(
                "m", v1, mode=CaptureMode.SYNC, strategy=TransferStrategy.PFS
            )
            viper.load_weights("m")
            v2 = perturb(v1, ["layer0"])
            result = viper.save_weights(
                "m", v2, mode=CaptureMode.SYNC, strategy=TransferStrategy.PFS
            )
            # The durable root stays self-contained for crash recovery.
            assert result.record.wire_bytes == 0
            loaded = viper.load_weights("m")
            for key in v2:
                np.testing.assert_array_equal(loaded.state[key], v2[key])

    def test_compression_only_first_save(self):
        # No base exists for version 1, but a codec still shrinks the
        # wire: an all-literal compressed frame ships when it wins.
        state = {"z": np.zeros((256, 256), dtype=np.float32)}
        with Viper(compression="zlib") as viper:
            result = viper.save_weights(
                "m", state, mode=CaptureMode.SYNC,
                strategy=TransferStrategy.HOST_TO_HOST,
            )
            assert 0 < result.record.wire_bytes < result.record.nbytes // 10
            loaded = viper.load_weights("m")
            np.testing.assert_array_equal(loaded.state["z"], state["z"])

    def test_delta_off_keeps_monolithic_accounting(self):
        with Viper() as viper:
            viper.save_weights(
                "m", fleet_state(seed=3), mode=CaptureMode.SYNC,
                strategy=TransferStrategy.HOST_TO_HOST,
            )
            rec = viper.load_weights("m").record
            assert rec.wire_bytes == 0
            assert rec.wire_fraction == 1.0
            snap = viper.handler.stats.snapshot()
            assert snap.delta_hits == 0

    def test_async_delta_saves_drain_clean(self):
        with Viper(delta=True) as viper:
            v1 = fleet_state(seed=4)
            viper.save_weights(
                "m", v1, mode=CaptureMode.SYNC,
                strategy=TransferStrategy.HOST_TO_HOST,
            )
            viper.load_weights("m")
            state = v1
            for i in range(3):
                state = perturb(state, [f"layer{i % 8}"], scale=0.1)
                viper.save_weights(
                    "m", state, mode=CaptureMode.ASYNC,
                    strategy=TransferStrategy.HOST_TO_HOST,
                )
                viper.drain()
                loaded = viper.load_weights("m")
                for key in state:
                    np.testing.assert_array_equal(loaded.state[key], state[key])

    def test_consumer_refresh_over_delta_path(self):
        # The full consumer wave: subscribe, refresh, double-buffer swap.
        from repro.dnn.layers import Dense
        from repro.dnn.models import Sequential

        def builder():
            return Sequential([Dense(4, name="d")], input_shape=(8,), seed=7)

        with Viper(delta=True) as viper:
            consumer = viper.consumer(model_builder=builder)
            consumer.subscribe()
            state = builder().state_dict()
            for i in range(3):
                state = {k: v.copy() for k, v in state.items()}
                state["d/W"][...] = float(i)
                viper.save_weights(
                    "m", state, mode=CaptureMode.SYNC,
                    strategy=TransferStrategy.HOST_TO_HOST,
                )
                consumer.refresh("m")
                live = consumer.current_model().state_dict()
                np.testing.assert_allclose(live["d/W"], float(i))
            assert consumer.current_version == 3
