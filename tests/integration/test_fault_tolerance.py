"""Fault-tolerance integration: crash, recover from the PFS, resume.

Paper §4.4: "For fault tolerance, all historical DNN models are flushed
to the PFS through a background thread to minimize the impact on
training."  These tests exercise that path end to end:

1. checkpoints travel the fast memory channel AND are flushed durably;
2. after a simulated node loss (memory tiers wiped), the latest
   checkpoint is still loadable — from the PFS;
3. a full training state (weights + optimizer + progress) survives the
   same journey and resumes training identically.
"""

import numpy as np
import pytest

from repro import CaptureMode, TransferStrategy, Viper
from repro.dnn.checkpointing import pack_training_state, unpack_training_state
from repro.dnn.layers import Dense
from repro.dnn.losses import MSELoss
from repro.dnn.models import Sequential
from repro.dnn.optimizers import SGD


def make_model(seed=11):
    model = Sequential([Dense(1, name="d")], input_shape=(2,), seed=seed)
    model.compile(SGD(0.05, momentum=0.9), MSELoss())
    return model


def make_data(n=40, seed=2):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 2)).astype(np.float32)
    y = (x @ np.array([[1.5], [-0.5]])).astype(np.float32)
    return x, y


class TestDurableRecovery:
    def test_memory_loss_recovers_from_pfs(self):
        with Viper(flush_history=True) as viper:
            model = make_model()
            viper.save_weights(
                "m", model.state_dict(),
                mode=CaptureMode.SYNC, strategy=TransferStrategy.GPU_TO_GPU,
            )
            viper.drain()
            # Node loss: every memory tier wiped; the PFS survives.
            viper.consumer_node.gpu.clear()
            viper.consumer_node.dram.clear()
            viper.producer_node.gpu.clear()
            viper.producer_node.dram.clear()

            loaded = viper.load_weights("m")
            assert loaded.location == "pfs"  # served by the durable copy
            assert loaded.record.durable
            for key, value in model.state_dict().items():
                np.testing.assert_array_equal(loaded.state[key], value)

    def test_without_flush_memory_loss_is_fatal(self):
        with Viper(flush_history=False) as viper:
            model = make_model()
            viper.save_weights(
                "m", model.state_dict(),
                mode=CaptureMode.SYNC, strategy=TransferStrategy.GPU_TO_GPU,
            )
            viper.drain()
            viper.consumer_node.gpu.clear()
            with pytest.raises(Exception):
                viper.load_weights("m")

    def test_history_retained_on_pfs_latest_in_memory(self):
        with Viper(flush_history=True) as viper:
            model = make_model()
            for _ in range(3):
                viper.save_weights(
                    "m", model.state_dict(),
                    mode=CaptureMode.SYNC,
                    strategy=TransferStrategy.GPU_TO_GPU,
                )
            viper.drain()
            # All three versions durable on the PFS.
            assert {"m/v1", "m/v2", "m/v3"} <= set(viper.cluster.pfs.keys())


class TestTrainingResume:
    def test_crash_resume_through_viper(self):
        x, y = make_data()
        with Viper(flush_history=True) as viper:
            # --- original producer trains 8 steps, checkpoints fully
            producer = make_model()
            for _ in range(8):
                producer.train_batch(x, y)
            viper.save_weights(
                "train-state",
                pack_training_state(producer, producer.optimizer, 8),
                mode=CaptureMode.SYNC,
                strategy=TransferStrategy.HOST_TO_HOST,
            )
            viper.drain()
            # --- crash: all memory gone
            viper.producer_node.dram.clear()
            viper.consumer_node.dram.clear()
            del producer

            # --- replacement producer restores from the durable copy
            replacement = make_model(seed=77)
            loaded = viper.load_weights("train-state")
            iteration = unpack_training_state(
                loaded.state, replacement, replacement.optimizer
            )
            assert iteration == 8

            # --- training continues identically to an uninterrupted run
            straight = make_model()
            for _ in range(12):
                straight.train_batch(x, y)
            for _ in range(4):
                replacement.train_batch(x, y)
            for key, value in straight.state_dict().items():
                np.testing.assert_allclose(
                    replacement.state_dict()[key], value, rtol=1e-5, atol=1e-6
                )
