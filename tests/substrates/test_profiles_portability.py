"""Vendor portability: Viper's orderings hold on every hardware profile.

Paper §4.4: "Viper is designed to be generic, ensuring compatibility
across various GPU vendors" — NVIDIA GPUDirect on the Polaris-class
profile, AMD ROCm RDMA on the Frontier-class one.  The qualitative
results (Fig. 8 orderings, Fig. 9 stall hierarchy) must be profile-
independent.
"""

import pytest

from repro.substrates.cost import GB
from repro.substrates.profiles import FRONTIER, LAPTOP, POLARIS
from repro.dnn.serialization import H5LikeSerializer, ViperSerializer
from repro.core.transfer.strategies import (
    CaptureMode,
    TransferStrategy,
    compute_timings,
)

PROFILES = {"polaris": POLARIS, "frontier": FRONTIER, "laptop": LAPTOP}
TC1 = int(4.7 * GB)


@pytest.mark.parametrize("profile_name", list(PROFILES))
class TestOrderingsPortable:
    def test_fig8_strategy_ordering(self, profile_name):
        profile = PROFILES[profile_name]
        ser = ViperSerializer()
        latencies = {
            strategy: compute_timings(
                profile, ser, strategy, CaptureMode.SYNC, TC1, 30
            ).update_latency
            for strategy in TransferStrategy
        }
        assert (
            latencies[TransferStrategy.GPU_TO_GPU]
            < latencies[TransferStrategy.HOST_TO_HOST]
            < latencies[TransferStrategy.PFS]
        )

    def test_h5py_baseline_slowest(self, profile_name):
        profile = PROFILES[profile_name]
        viper = compute_timings(
            profile, ViperSerializer(), TransferStrategy.PFS,
            CaptureMode.SYNC, TC1, 30,
        ).update_latency
        h5 = compute_timings(
            profile, H5LikeSerializer(), TransferStrategy.PFS,
            CaptureMode.SYNC, TC1, 30,
        ).update_latency
        assert h5 > viper

    def test_async_stall_reduction(self, profile_name):
        profile = PROFILES[profile_name]
        ser = ViperSerializer()
        for strategy in TransferStrategy:
            sync = compute_timings(
                profile, ser, strategy, CaptureMode.SYNC, TC1, 30
            )
            asyn = compute_timings(
                profile, ser, strategy, CaptureMode.ASYNC, TC1, 30
            )
            assert asyn.stall.total < sync.stall.total

    def test_fig9_stall_hierarchy(self, profile_name):
        profile = PROFILES[profile_name]
        ser = ViperSerializer()
        gpu = compute_timings(
            profile, ser, TransferStrategy.GPU_TO_GPU, CaptureMode.ASYNC, TC1, 30
        ).stall.total
        host = compute_timings(
            profile, ser, TransferStrategy.HOST_TO_HOST, CaptureMode.ASYNC, TC1, 30
        ).stall.total
        pfs = compute_timings(
            profile, ser, TransferStrategy.PFS, CaptureMode.SYNC, TC1, 30
        ).stall.total
        assert gpu < host < pfs


class TestFrontierSpecifics:
    def test_gpu_speedup_band_on_frontier(self):
        baseline = compute_timings(
            FRONTIER, H5LikeSerializer(), TransferStrategy.PFS,
            CaptureMode.SYNC, TC1, 30,
        ).update_latency
        gpu = compute_timings(
            FRONTIER, ViperSerializer(), TransferStrategy.GPU_TO_GPU,
            CaptureMode.SYNC, TC1, 30,
        ).update_latency
        # Faster PFS + faster GPU path: still a large direct-channel win.
        assert baseline / gpu > 4.0

    def test_frontier_profile_sane(self):
        assert FRONTIER.gpu_hbm.capacity_bytes == 64 * GB
        assert FRONTIER.nvlink.bandwidth > FRONTIER.infiniband.bandwidth
        assert FRONTIER.pfs.read_bw < FRONTIER.host_dram.read_bw
