"""Tests for the simulated clock and discrete-event loop."""

import pytest

from repro.errors import SimulationError
from repro.substrates.simclock import EventLoop, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(5.0).now() == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            SimClock(-1.0)

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(2.5)
        assert clock.now() == pytest.approx(4.0)

    def test_advance_returns_new_time(self):
        assert SimClock().advance(3.0) == pytest.approx(3.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(SimulationError):
            SimClock().advance(-0.1)

    def test_advance_to_moves_forward(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now() == 10.0

    def test_advance_to_past_is_noop(self):
        clock = SimClock(10.0)
        clock.advance_to(5.0)
        assert clock.now() == 10.0

    def test_reset(self):
        clock = SimClock(7.0)
        clock.reset()
        assert clock.now() == 0.0

    def test_reset_negative_rejected(self):
        with pytest.raises(SimulationError):
            SimClock().reset(-2.0)


class TestEventLoop:
    def test_events_run_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule_at(2.0, lambda: order.append("b"))
        loop.schedule_at(1.0, lambda: order.append("a"))
        loop.schedule_at(3.0, lambda: order.append("c"))
        loop.run()
        assert order == ["a", "b", "c"]

    def test_fifo_among_equal_timestamps(self):
        loop = EventLoop()
        order = []
        for tag in "abc":
            loop.schedule_at(1.0, lambda t=tag: order.append(t))
        loop.run()
        assert order == ["a", "b", "c"]

    def test_clock_follows_events(self):
        loop = EventLoop()
        times = []
        loop.schedule_at(1.5, lambda: times.append(loop.clock.now()))
        loop.schedule_at(4.0, lambda: times.append(loop.clock.now()))
        loop.run()
        assert times == [1.5, 4.0]

    def test_schedule_after_is_relative(self):
        loop = EventLoop()
        seen = []
        loop.clock.advance(10.0)
        loop.schedule_after(2.0, lambda: seen.append(loop.clock.now()))
        loop.run()
        assert seen == [12.0]

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(SimulationError):
            loop.schedule_after(-1.0, lambda: None)

    def test_scheduling_in_past_rejected(self):
        loop = EventLoop()
        loop.clock.advance(5.0)
        with pytest.raises(SimulationError):
            loop.schedule_at(1.0, lambda: None)

    def test_events_can_schedule_events(self):
        loop = EventLoop()
        seen = []

        def first():
            seen.append("first")
            loop.schedule_after(1.0, lambda: seen.append("second"))

        loop.schedule_at(1.0, first)
        loop.run()
        assert seen == ["first", "second"]
        assert loop.clock.now() == pytest.approx(2.0)

    def test_cancelled_events_skipped(self):
        loop = EventLoop()
        seen = []
        ev = loop.schedule_at(1.0, lambda: seen.append("x"))
        ev.cancel()
        loop.schedule_at(2.0, lambda: seen.append("y"))
        loop.run()
        assert seen == ["y"]

    def test_run_until_stops_and_advances_clock(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(1.0, lambda: seen.append(1))
        loop.schedule_at(5.0, lambda: seen.append(5))
        executed = loop.run(until=3.0)
        assert executed == 1
        assert seen == [1]
        assert loop.clock.now() == pytest.approx(3.0)
        loop.run()
        assert seen == [1, 5]

    def test_step_returns_event_then_none(self):
        loop = EventLoop()
        loop.schedule_at(1.0, lambda: None, name="only")
        ev = loop.step()
        assert ev is not None and ev.name == "only"
        assert loop.step() is None

    def test_peek_time(self):
        loop = EventLoop()
        assert loop.peek_time() is None
        loop.schedule_at(3.0, lambda: None)
        assert loop.peek_time() == 3.0

    def test_peek_skips_cancelled(self):
        loop = EventLoop()
        ev = loop.schedule_at(1.0, lambda: None)
        loop.schedule_at(2.0, lambda: None)
        ev.cancel()
        assert loop.peek_time() == 2.0

    def test_max_events_guard(self):
        loop = EventLoop()

        def respawn():
            loop.schedule_after(0.0, respawn)

        loop.schedule_at(0.0, respawn)
        with pytest.raises(SimulationError):
            loop.run(max_events=100)

    def test_not_reentrant(self):
        loop = EventLoop()

        def inner():
            loop.run()

        loop.schedule_at(1.0, inner)
        with pytest.raises(SimulationError):
            loop.run()

    def test_drain_reports_dropped(self):
        loop = EventLoop()
        loop.schedule_at(1.0, lambda: None, name="a")
        loop.schedule_at(2.0, lambda: None, name="a")
        loop.schedule_at(3.0, lambda: None, name="b")
        dropped = loop.drain()
        assert dropped == {"a": 2, "b": 1}
        assert loop.pending == 0

    def test_executed_counter(self):
        loop = EventLoop()
        for t in (1.0, 2.0):
            loop.schedule_at(t, lambda: None)
        loop.run()
        assert loop.executed == 2
