"""Tests for compute nodes and the two-node topology."""

import pytest

from repro.errors import ConfigurationError
from repro.substrates.cluster.cluster import Cluster, make_producer_consumer_pair
from repro.substrates.cluster.node import ComputeNode
from repro.substrates.memory.tiers import TierKind
from repro.substrates.profiles import LAPTOP, POLARIS


def make_node(name="n"):
    return ComputeNode(
        name,
        gpu_spec=POLARIS.gpu_hbm,
        dram_spec=POLARIS.host_dram,
        pcie=POLARIS.pcie,
        hbm_copy=POLARIS.hbm_copy,
        dram_copy=POLARIS.dram_copy,
    )


class TestComputeNode:
    def test_stores_exist(self):
        node = make_node()
        assert node.gpu.spec.kind is TierKind.GPU_HBM
        assert node.dram.spec.kind is TierKind.HOST_DRAM

    def test_wrong_tier_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            ComputeNode(
                "bad",
                gpu_spec=POLARIS.host_dram,  # wrong kind
                dram_spec=POLARIS.host_dram,
                pcie=POLARIS.pcie,
                hbm_copy=POLARIS.hbm_copy,
                dram_copy=POLARIS.dram_copy,
            )
        with pytest.raises(ConfigurationError):
            ComputeNode(
                "bad",
                gpu_spec=POLARIS.gpu_hbm,
                dram_spec=POLARIS.gpu_hbm,  # wrong kind
                pcie=POLARIS.pcie,
                hbm_copy=POLARIS.hbm_copy,
                dram_copy=POLARIS.dram_copy,
            )

    def test_copy_cost_laws(self):
        node = make_node()
        nbytes = 1_000_000_000
        assert node.d2h_cost(nbytes).total == pytest.approx(
            POLARIS.pcie.transfer_time(nbytes)
        )
        assert node.h2d_cost(nbytes).total == node.d2h_cost(nbytes).total
        assert node.d2d_cost(nbytes).total == pytest.approx(
            POLARIS.hbm_copy.transfer_time(nbytes)
        )
        assert node.h2h_cost(nbytes).total == pytest.approx(
            POLARIS.dram_copy.transfer_time(nbytes)
        )

    def test_store_lookup(self):
        node = make_node()
        assert node.store(TierKind.GPU_HBM) is node.gpu
        assert node.store(TierKind.HOST_DRAM) is node.dram
        with pytest.raises(ConfigurationError):
            node.store(TierKind.PFS)

    def test_describe(self):
        assert "node n" in make_node().describe()


class TestCluster:
    def test_pair_topology(self):
        cluster, producer, consumer = make_producer_consumer_pair(POLARIS)
        assert producer.name == "producer"
        assert consumer.name == "consumer"
        assert len(cluster.nodes) == 2
        assert cluster.pfs.spec.kind is TierKind.PFS

    def test_duplicate_node_rejected(self):
        cluster, _p, _c = make_producer_consumer_pair(POLARIS)
        with pytest.raises(ConfigurationError):
            cluster.add_node(make_node("producer"))

    def test_unknown_node_rejected(self):
        cluster, _p, _c = make_producer_consumer_pair(POLARIS)
        with pytest.raises(ConfigurationError):
            cluster.node("ghost")

    def test_host_plane_uses_ib(self):
        cluster, _p, _c = make_producer_consumer_pair(POLARIS)
        ep = cluster.host_endpoint("producer")
        cost = ep.send("consumer", b"x" * 1_000_000)
        assert cost.total == pytest.approx(
            POLARIS.infiniband.transfer_time(1_000_000)
        )

    def test_gpu_plane_uses_nvlink(self):
        cluster, _p, _c = make_producer_consumer_pair(POLARIS)
        ep = cluster.gpu_endpoint("producer")
        cost = ep.send("consumer.gpu", b"x" * 1_000_000)
        assert cost.total == pytest.approx(
            POLARIS.nvlink.transfer_time(1_000_000)
        )

    def test_gpu_plane_faster_than_host_plane(self):
        cluster, _p, _c = make_producer_consumer_pair(POLARIS)
        nbytes = 1_000_000_000
        gpu = cluster.gpu_link.transfer_time(nbytes)
        host = cluster.host_link.transfer_time(nbytes)
        assert gpu < host

    def test_wrong_pfs_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            Cluster(
                POLARIS.host_dram,
                gpu_link=POLARIS.nvlink,
                host_link=POLARIS.infiniband,
            )


class TestProfiles:
    @pytest.mark.parametrize("profile", [POLARIS, LAPTOP])
    def test_bandwidth_hierarchy(self, profile):
        """Memory tiers beat the PFS; GPU-direct beats host RDMA."""
        assert profile.gpu_hbm.read_bw > profile.pfs.read_bw
        assert profile.host_dram.read_bw > profile.pfs.read_bw
        assert profile.nvlink.bandwidth > profile.infiniband.bandwidth

    def test_polaris_models_a100(self):
        assert POLARIS.gpu_hbm.capacity_bytes == 40 * 10**9
