"""Tests for storage-tier performance models."""

import pytest

from repro.errors import ConfigurationError
from repro.substrates.memory.tiers import TierKind, TierSpec


def make_spec(**overrides):
    base = dict(
        name="t",
        kind=TierKind.HOST_DRAM,
        capacity_bytes=1000,
        read_bw=100.0,
        write_bw=50.0,
        read_latency=0.01,
        write_latency=0.02,
        per_object_overhead=0.005,
    )
    base.update(overrides)
    return TierSpec(**base)


class TestTierKind:
    def test_memory_tiers(self):
        assert TierKind.GPU_HBM.is_memory
        assert TierKind.HOST_DRAM.is_memory
        assert not TierKind.LOCAL_SSD.is_memory
        assert not TierKind.PFS.is_memory

    def test_shared_tier(self):
        assert TierKind.PFS.is_shared
        assert not TierKind.GPU_HBM.is_shared


class TestTierSpec:
    def test_write_time_law(self):
        spec = make_spec()
        # latency + bytes/bw + per-object
        assert spec.write_time(100) == pytest.approx(0.02 + 2.0 + 0.005)

    def test_read_time_law(self):
        spec = make_spec()
        assert spec.read_time(100) == pytest.approx(0.01 + 1.0 + 0.005)

    def test_multiple_objects_charge_per_object(self):
        spec = make_spec()
        single = spec.write_time(100, nobjects=1)
        many = spec.write_time(100, nobjects=10)
        assert many - single == pytest.approx(0.005 * 9)

    def test_zero_bytes_still_pays_latency(self):
        spec = make_spec()
        assert spec.write_time(0) == pytest.approx(0.02 + 0.005)

    def test_write_cost_label(self):
        assert make_spec().write_cost(100).breakdown() == {
            "host_dram.write": pytest.approx(2.025)
        }

    def test_read_cost_label(self):
        assert "host_dram.read" in make_spec().read_cost(100).breakdown()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("capacity_bytes", 0),
            ("capacity_bytes", -5),
            ("read_bw", 0.0),
            ("write_bw", -1.0),
            ("read_latency", -0.1),
            ("write_latency", -0.1),
            ("per_object_overhead", -0.1),
        ],
    )
    def test_invalid_spec_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            make_spec(**{field: value})

    def test_negative_bytes_rejected(self):
        spec = make_spec()
        with pytest.raises(ConfigurationError):
            spec.write_time(-1)
        with pytest.raises(ConfigurationError):
            spec.read_time(-1)

    def test_zero_objects_rejected(self):
        spec = make_spec()
        with pytest.raises(ConfigurationError):
            spec.write_time(10, nobjects=0)

    def test_describe_mentions_name_and_kind(self):
        text = make_spec().describe()
        assert "t" in text and "host_dram" in text
