"""Tests for the per-tier byte store."""

import threading

import pytest

from repro.errors import CapacityError, ObjectNotFoundError, StorageError
from repro.substrates.memory.storage import EvictionPolicy, TierStore
from repro.substrates.memory.tiers import TierKind, TierSpec


def make_store(capacity=1000, eviction=EvictionPolicy.NONE):
    spec = TierSpec(
        name="t",
        kind=TierKind.HOST_DRAM,
        capacity_bytes=capacity,
        read_bw=100.0,
        write_bw=50.0,
    )
    return TierStore(spec, eviction=eviction)


class TestPutGet:
    def test_roundtrip(self):
        store = make_store()
        store.put("k", b"hello")
        data, _cost = store.get("k")
        assert data == b"hello"

    def test_get_missing_raises(self):
        with pytest.raises(ObjectNotFoundError):
            make_store().get("nope")

    def test_put_returns_write_cost(self):
        store = make_store()
        cost = store.put("k", b"x" * 100)
        assert cost.total == pytest.approx(100 / 50.0)

    def test_get_returns_read_cost(self):
        store = make_store()
        store.put("k", b"x" * 100)
        _data, cost = store.get("k")
        assert cost.total == pytest.approx(100 / 100.0)

    def test_virtual_bytes_drive_cost_and_capacity(self):
        store = make_store(capacity=1000)
        cost = store.put("k", b"xy", virtual_bytes=500)
        assert cost.total == pytest.approx(500 / 50.0)
        assert store.used_bytes == 500
        assert store.free_bytes == 500

    def test_overwrite_releases_old_allocation(self):
        store = make_store(capacity=100)
        store.put("k", b"x", virtual_bytes=80)
        store.put("k", b"y", virtual_bytes=90)  # would not fit alongside
        assert store.used_bytes == 90
        assert store.get("k")[0] == b"y"

    def test_failed_overwrite_restores_old_object(self):
        store = make_store(capacity=100)
        store.put("k", b"old", virtual_bytes=80)
        with pytest.raises(CapacityError):
            store.put("k", b"new", virtual_bytes=200)
        assert store.get("k")[0] == b"old"
        assert store.used_bytes == 80

    def test_non_bytes_payload_rejected(self):
        with pytest.raises(StorageError):
            make_store().put("k", {"not": "bytes"})

    def test_negative_virtual_bytes_rejected(self):
        with pytest.raises(StorageError):
            make_store().put("k", b"x", virtual_bytes=-1)

    def test_memoryview_accepted(self):
        store = make_store()
        store.put("k", memoryview(b"abc"))
        assert store.get("k")[0] == b"abc"

    def test_stat_returns_descriptor_without_touching_lru(self):
        store = make_store()
        store.put("k", b"x", version=3, meta={"loss": 0.5})
        obj = store.stat("k")
        assert obj.version == 3
        assert obj.meta["loss"] == 0.5
        assert obj.real_bytes == 1

    def test_contains_len_keys(self):
        store = make_store()
        store.put("a", b"1")
        store.put("b", b"2")
        assert "a" in store and "c" not in store
        assert len(store) == 2
        assert set(store.keys()) == {"a", "b"}

    def test_delete(self):
        store = make_store()
        store.put("k", b"x", virtual_bytes=10)
        store.delete("k")
        assert "k" not in store
        assert store.used_bytes == 0
        with pytest.raises(ObjectNotFoundError):
            store.delete("k")

    def test_clear(self):
        store = make_store()
        store.put("a", b"1")
        store.clear()
        assert len(store) == 0 and store.used_bytes == 0


class TestEviction:
    def test_none_policy_raises_when_full(self):
        store = make_store(capacity=100)
        store.put("a", b"x", virtual_bytes=60)
        with pytest.raises(CapacityError) as exc:
            store.put("b", b"y", virtual_bytes=60)
        assert exc.value.requested == 60

    def test_object_larger_than_tier_always_rejected(self):
        store = make_store(capacity=100, eviction=EvictionPolicy.LRU)
        with pytest.raises(CapacityError):
            store.put("k", b"x", virtual_bytes=101)

    def test_lru_evicts_least_recently_used(self):
        store = make_store(capacity=100, eviction=EvictionPolicy.LRU)
        store.put("a", b"1", virtual_bytes=40)
        store.put("b", b"2", virtual_bytes=40)
        store.get("a")  # touch a; b is now LRU
        store.put("c", b"3", virtual_bytes=40)
        assert "b" not in store
        assert "a" in store and "c" in store
        assert store.eviction_log == ("b",)

    def test_oldest_version_evicts_lowest_version(self):
        store = make_store(capacity=100, eviction=EvictionPolicy.OLDEST_VERSION)
        store.put("v2", b"2", virtual_bytes=40, version=2)
        store.put("v1", b"1", virtual_bytes=40, version=1)
        store.put("v3", b"3", virtual_bytes=40, version=3)
        assert "v1" not in store
        assert "v2" in store and "v3" in store

    def test_pinned_objects_survive(self):
        store = make_store(capacity=100, eviction=EvictionPolicy.LRU)
        store.put("keep", b"x", virtual_bytes=60, pinned=True)
        with pytest.raises(CapacityError):
            store.put("new", b"y", virtual_bytes=60)
        assert "keep" in store

    def test_pin_unpin(self):
        store = make_store(capacity=100, eviction=EvictionPolicy.LRU)
        store.put("a", b"x", virtual_bytes=60, pinned=True)
        store.pin("a", False)
        store.put("b", b"y", virtual_bytes=60)
        assert "a" not in store

    def test_multiple_evictions_to_fit(self):
        store = make_store(capacity=100, eviction=EvictionPolicy.LRU)
        for key in "abc":
            store.put(key, b"x", virtual_bytes=30)
        store.put("big", b"y", virtual_bytes=90)
        assert set(store.keys()) == {"big"}
        assert store.eviction_log == ("a", "b", "c")


class TestThreadSafety:
    def test_concurrent_puts_and_gets(self):
        store = make_store(capacity=10_000_000)
        errors = []

        def writer(tid):
            try:
                for i in range(50):
                    store.put(f"{tid}/{i}", bytes([tid]) * 10)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def reader(tid):
            try:
                for i in range(50):
                    try:
                        data, _ = store.get(f"{tid}/{i}")
                        assert data == bytes([tid]) * 10
                    except ObjectNotFoundError:
                        pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(4)]
        threads += [threading.Thread(target=reader, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(store) == 200
