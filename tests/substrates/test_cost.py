"""Tests for simulated-time cost accounting."""

import pytest

from repro.substrates.cost import GB, KB, MB, Cost


class TestCost:
    def test_zero_total(self):
        assert Cost.zero().total == 0.0

    def test_of_single_component(self):
        cost = Cost.of("pfs.write", 1.5)
        assert cost.total == pytest.approx(1.5)
        assert cost.breakdown() == {"pfs.write": 1.5}

    def test_negative_component_rejected(self):
        with pytest.raises(ValueError):
            Cost.of("x", -1.0)

    def test_addition_concatenates(self):
        total = Cost.of("a", 1.0) + Cost.of("b", 2.0)
        assert total.total == pytest.approx(3.0)
        assert total.breakdown() == {"a": 1.0, "b": 2.0}

    def test_addition_merges_duplicate_labels(self):
        total = Cost.of("a", 1.0) + Cost.of("a", 2.0)
        assert total.breakdown() == {"a": 3.0}

    def test_sum_builtin(self):
        costs = [Cost.of("a", 1.0), Cost.of("b", 2.0), Cost.of("c", 3.0)]
        assert sum(costs).total == pytest.approx(6.0)

    def test_sum_starts_with_zero_int(self):
        assert sum([Cost.of("a", 1.0)], Cost.zero()).total == 1.0

    def test_zero_is_identity(self):
        cost = Cost.of("a", 2.0)
        assert (cost + Cost.zero()).total == cost.total

    def test_scaled(self):
        cost = Cost.of("a", 2.0).scaled(2.5)
        assert cost.total == pytest.approx(5.0)

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError):
            Cost.of("a", 1.0).scaled(-1.0)

    def test_only_filters_by_prefix(self):
        cost = Cost.of("pfs.write", 1.0) + Cost.of("link.ib", 2.0)
        assert cost.only(["pfs"]).total == pytest.approx(1.0)
        assert cost.only(["link"]).breakdown() == {"link.ib": 2.0}
        assert cost.only(["nope"]).total == 0.0

    def test_from_mapping(self):
        cost = Cost.from_mapping({"a": 1.0, "b": 2.0})
        assert cost.total == pytest.approx(3.0)

    def test_immutable(self):
        cost = Cost.of("a", 1.0)
        with pytest.raises(AttributeError):
            cost.components = ()

    def test_size_constants(self):
        assert KB == 1_000
        assert MB == 1_000_000
        assert GB == 1_000_000_000

    def test_repr_contains_total(self):
        assert "total=3.0000s" in repr(Cost.of("a", 3.0))
