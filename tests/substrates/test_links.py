"""Tests for interconnect link models."""

import pytest

from repro.errors import ConfigurationError
from repro.substrates.network.links import LinkKind, LinkSpec


def make_link(**overrides):
    base = dict(
        name="l",
        kind=LinkKind.INFINIBAND,
        bandwidth=100.0,
        latency=0.001,
        per_message_overhead=0.002,
    )
    base.update(overrides)
    return LinkSpec(**base)


class TestLinkSpec:
    def test_transfer_time_law(self):
        link = make_link()
        assert link.transfer_time(100) == pytest.approx(0.001 + 1.0 + 0.002)

    def test_multiple_messages(self):
        link = make_link()
        one = link.transfer_time(100, nmessages=1)
        five = link.transfer_time(100, nmessages=5)
        assert five - one == pytest.approx(0.002 * 4)

    def test_zero_bytes_pays_latency_only(self):
        assert make_link().transfer_time(0) == pytest.approx(0.003)

    def test_transfer_cost_label(self):
        cost = make_link().transfer_cost(100)
        assert cost.breakdown() == {"link.infiniband": pytest.approx(1.003)}

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            make_link(bandwidth=0.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            make_link(latency=-0.1)

    def test_negative_overhead_rejected(self):
        with pytest.raises(ConfigurationError):
            make_link(per_message_overhead=-0.1)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            make_link().transfer_time(-1)

    def test_zero_messages_rejected(self):
        with pytest.raises(ConfigurationError):
            make_link().transfer_time(10, nmessages=0)

    def test_describe(self):
        text = make_link().describe()
        assert "l" in text and "infiniband" in text

    def test_all_kinds_constructible(self):
        for kind in LinkKind:
            assert make_link(kind=kind).kind is kind


class TestPipelinedTransferTime:
    def test_never_slower_than_monolithic(self):
        link = make_link()
        for nbytes in (0, 1, 100, 10**4, 10**6, 10**9):
            for chunk in (1, 64, 10**3, 10**6, 10**9):
                for lanes in (1, 2, 4, 8):
                    assert link.pipelined_transfer_time(
                        nbytes, chunk, lanes=lanes
                    ) <= link.transfer_time(nbytes) + 1e-12

    def test_equal_at_one_chunk(self):
        link = make_link()
        nbytes = 500
        assert link.pipelined_transfer_time(nbytes, nbytes, lanes=1) == pytest.approx(
            link.transfer_time(nbytes)
        )
        assert link.pipelined_transfer_time(nbytes, 10**9) == pytest.approx(
            link.transfer_time(nbytes)
        )

    def test_monotone_in_lanes(self):
        link = make_link()
        times = [
            link.pipelined_transfer_time(10**6, 10**3, lanes=lanes)
            for lanes in (1, 2, 4, 8, 16)
        ]
        assert times == sorted(times, reverse=True)

    def test_chunking_beats_per_message_framing(self):
        # Monolithic nmessages=k pays k full setups serially; the pipeline
        # overlaps them, so the chunked time must win for many chunks.
        link = make_link()
        nbytes, k = 10**6, 100
        framed = link.transfer_time(nbytes, nmessages=k)
        piped = link.pipelined_transfer_time(nbytes, nbytes // k, lanes=4)
        assert piped < framed

    def test_cost_matches_time(self):
        link = make_link()
        cost = link.pipelined_transfer_cost(10**6, 10**3, lanes=2)
        assert cost.total == pytest.approx(
            link.pipelined_transfer_time(10**6, 10**3, lanes=2)
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"nbytes": -1, "chunk_bytes": 10},
            {"nbytes": 10, "chunk_bytes": 0},
            {"nbytes": 10, "chunk_bytes": 10, "lanes": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            make_link().pipelined_transfer_time(**kwargs)
