"""Tests for interconnect link models."""

import pytest

from repro.errors import ConfigurationError
from repro.substrates.network.links import LinkKind, LinkSpec


def make_link(**overrides):
    base = dict(
        name="l",
        kind=LinkKind.INFINIBAND,
        bandwidth=100.0,
        latency=0.001,
        per_message_overhead=0.002,
    )
    base.update(overrides)
    return LinkSpec(**base)


class TestLinkSpec:
    def test_transfer_time_law(self):
        link = make_link()
        assert link.transfer_time(100) == pytest.approx(0.001 + 1.0 + 0.002)

    def test_multiple_messages(self):
        link = make_link()
        one = link.transfer_time(100, nmessages=1)
        five = link.transfer_time(100, nmessages=5)
        assert five - one == pytest.approx(0.002 * 4)

    def test_zero_bytes_pays_latency_only(self):
        assert make_link().transfer_time(0) == pytest.approx(0.003)

    def test_transfer_cost_label(self):
        cost = make_link().transfer_cost(100)
        assert cost.breakdown() == {"link.infiniband": pytest.approx(1.003)}

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            make_link(bandwidth=0.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            make_link(latency=-0.1)

    def test_negative_overhead_rejected(self):
        with pytest.raises(ConfigurationError):
            make_link(per_message_overhead=-0.1)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            make_link().transfer_time(-1)

    def test_zero_messages_rejected(self):
        with pytest.raises(ConfigurationError):
            make_link().transfer_time(10, nmessages=0)

    def test_describe(self):
        text = make_link().describe()
        assert "l" in text and "infiniband" in text

    def test_all_kinds_constructible(self):
        for kind in LinkKind:
            assert make_link(kind=kind).kind is kind
