"""Tests for the mpi4py-style message fabric."""

import threading
import time

import pytest

from repro.errors import ChannelClosedError, TransferError
from repro.substrates.network.channels import ANY_SOURCE, ANY_TAG, Fabric
from repro.substrates.network.links import LinkKind, LinkSpec


def make_fabric():
    link = LinkSpec("l", LinkKind.LOOPBACK, bandwidth=1000.0, latency=0.001)
    fabric = Fabric(default_link=link)
    a = fabric.endpoint("a")
    b = fabric.endpoint("b")
    return fabric, a, b


class TestSendRecv:
    def test_roundtrip(self):
        _f, a, b = make_fabric()
        a.send("b", b"payload", tag=7)
        msg = b.recv()
        assert msg.payload == b"payload"
        assert msg.source == "a" and msg.dest == "b" and msg.tag == 7

    def test_send_returns_link_cost(self):
        _f, a, b = make_fabric()
        cost = a.send("b", b"x" * 100)
        assert cost.total == pytest.approx(0.001 + 0.1)

    def test_virtual_bytes_drive_cost(self):
        _f, a, b = make_fabric()
        cost = a.send("b", b"xy", virtual_bytes=1000)
        assert cost.total == pytest.approx(0.001 + 1.0)
        assert b.recv().virtual_bytes == 1000

    def test_recv_matches_tag(self):
        _f, a, b = make_fabric()
        a.send("b", b"one", tag=1)
        a.send("b", b"two", tag=2)
        assert b.recv(tag=2).payload == b"two"
        assert b.recv(tag=1).payload == b"one"

    def test_recv_matches_source(self):
        fabric, a, b = make_fabric()
        c = fabric.endpoint("c")
        a.send("b", b"from-a")
        c.send("b", b"from-c")
        assert b.recv(source="c").payload == b"from-c"
        assert b.recv(source="a").payload == b"from-a"

    def test_recv_any(self):
        _f, a, b = make_fabric()
        a.send("b", b"x", tag=42)
        msg = b.recv(source=ANY_SOURCE, tag=ANY_TAG)
        assert msg.tag == 42

    def test_recv_timeout(self):
        _f, _a, b = make_fabric()
        with pytest.raises(TransferError):
            b.recv(timeout=0.05)

    def test_fifo_order_per_tag(self):
        _f, a, b = make_fabric()
        for i in range(5):
            a.send("b", bytes([i]), tag=0)
        got = [b.recv(tag=0).payload[0] for _ in range(5)]
        assert got == [0, 1, 2, 3, 4]

    def test_payload_is_copied(self):
        _f, a, b = make_fabric()
        buf = bytearray(b"abc")
        a.send("b", buf)
        buf[0] = ord("z")
        assert b.recv().payload == b"abc"

    def test_non_bytes_rejected(self):
        _f, a, _b = make_fabric()
        with pytest.raises(TransferError):
            a.send("b", [1, 2, 3])

    def test_unknown_destination_rejected(self):
        _f, a, _b = make_fabric()
        with pytest.raises(TransferError):
            a.send("ghost", b"x")

    def test_meta_travels(self):
        _f, a, b = make_fabric()
        a.send("b", b"x", meta={"version": 3})
        assert b.recv().meta["version"] == 3

    def test_sequence_numbers_increase(self):
        _f, a, b = make_fabric()
        a.send("b", b"1")
        a.send("b", b"2")
        assert b.recv().seq < b.recv().seq


class TestNonBlocking:
    def test_isend_completes(self):
        _f, a, b = make_fabric()
        req, cost = a.isend("b", b"x")
        assert req.test()
        assert cost.total > 0
        assert b.recv().payload == b"x"

    def test_irecv_waits_for_message(self):
        _f, a, b = make_fabric()
        req = b.irecv(tag=5)
        assert not req.test()
        a.send("b", b"late", tag=5)
        msg = req.wait(timeout=2.0)
        assert msg.payload == b"late"

    def test_probe(self):
        _f, a, b = make_fabric()
        assert not b.probe()
        a.send("b", b"x", tag=9)
        assert b.probe(tag=9)
        # probing does not consume
        assert b.recv(tag=9).payload == b"x"


class TestLifecycle:
    def test_closed_endpoint_raises_on_recv(self):
        _f, _a, b = make_fabric()
        b.close()
        with pytest.raises(ChannelClosedError):
            b.recv(timeout=0.5)

    def test_fabric_close_closes_all(self):
        fabric, _a, b = make_fabric()
        fabric.close()
        with pytest.raises(ChannelClosedError):
            b.recv(timeout=0.5)

    def test_fabric_counters(self):
        fabric, a, b = make_fabric()
        a.send("b", b"x" * 10)
        a.send("b", b"y" * 20)
        assert fabric.delivered == 2
        assert fabric.bytes_moved == 30

    def test_route_specific_link(self):
        fabric, a, b = make_fabric()
        fast = LinkSpec("fast", LinkKind.NVLINK, bandwidth=1e6)
        fabric.connect("a", "b", fast)
        cost = a.send("b", b"x" * 1000)
        assert cost.total == pytest.approx(0.001)  # 1000/1e6 ~ 0.001

    def test_no_link_no_default(self):
        fabric = Fabric()
        fabric.endpoint("x")
        fabric.endpoint("y")
        with pytest.raises(TransferError):
            fabric.endpoint("x").send("y", b"data")

    def test_cross_thread_delivery(self):
        _f, a, b = make_fabric()
        received = []

        def consumer():
            received.append(b.recv(timeout=2.0).payload)

        t = threading.Thread(target=consumer)
        t.start()
        time.sleep(0.02)
        a.send("b", b"threaded")
        t.join(2.0)
        assert received == [b"threaded"]
