"""Tests for the mpi4py-style message fabric."""

import threading
import time

import pytest

from repro.errors import ChannelClosedError, TransferError
from repro.substrates.network.channels import ANY_SOURCE, ANY_TAG, Fabric
from repro.substrates.network.links import LinkKind, LinkSpec


def make_fabric():
    link = LinkSpec("l", LinkKind.LOOPBACK, bandwidth=1000.0, latency=0.001)
    fabric = Fabric(default_link=link)
    a = fabric.endpoint("a")
    b = fabric.endpoint("b")
    return fabric, a, b


class TestSendRecv:
    def test_roundtrip(self):
        _f, a, b = make_fabric()
        a.send("b", b"payload", tag=7)
        msg = b.recv()
        assert msg.payload == b"payload"
        assert msg.source == "a" and msg.dest == "b" and msg.tag == 7

    def test_send_returns_link_cost(self):
        _f, a, b = make_fabric()
        cost = a.send("b", b"x" * 100)
        assert cost.total == pytest.approx(0.001 + 0.1)

    def test_virtual_bytes_drive_cost(self):
        _f, a, b = make_fabric()
        cost = a.send("b", b"xy", virtual_bytes=1000)
        assert cost.total == pytest.approx(0.001 + 1.0)
        assert b.recv().virtual_bytes == 1000

    def test_recv_matches_tag(self):
        _f, a, b = make_fabric()
        a.send("b", b"one", tag=1)
        a.send("b", b"two", tag=2)
        assert b.recv(tag=2).payload == b"two"
        assert b.recv(tag=1).payload == b"one"

    def test_recv_matches_source(self):
        fabric, a, b = make_fabric()
        c = fabric.endpoint("c")
        a.send("b", b"from-a")
        c.send("b", b"from-c")
        assert b.recv(source="c").payload == b"from-c"
        assert b.recv(source="a").payload == b"from-a"

    def test_recv_any(self):
        _f, a, b = make_fabric()
        a.send("b", b"x", tag=42)
        msg = b.recv(source=ANY_SOURCE, tag=ANY_TAG)
        assert msg.tag == 42

    def test_recv_timeout(self):
        _f, _a, b = make_fabric()
        with pytest.raises(TransferError):
            b.recv(timeout=0.05)

    def test_fifo_order_per_tag(self):
        _f, a, b = make_fabric()
        for i in range(5):
            a.send("b", bytes([i]), tag=0)
        got = [b.recv(tag=0).payload[0] for _ in range(5)]
        assert got == [0, 1, 2, 3, 4]

    def test_payload_is_copied(self):
        _f, a, b = make_fabric()
        buf = bytearray(b"abc")
        a.send("b", buf)
        buf[0] = ord("z")
        assert b.recv().payload == b"abc"

    def test_non_bytes_rejected(self):
        _f, a, _b = make_fabric()
        with pytest.raises(TransferError):
            a.send("b", [1, 2, 3])

    def test_unknown_destination_rejected(self):
        _f, a, _b = make_fabric()
        with pytest.raises(TransferError):
            a.send("ghost", b"x")

    def test_meta_travels(self):
        _f, a, b = make_fabric()
        a.send("b", b"x", meta={"version": 3})
        assert b.recv().meta["version"] == 3

    def test_sequence_numbers_increase(self):
        _f, a, b = make_fabric()
        a.send("b", b"1")
        a.send("b", b"2")
        assert b.recv().seq < b.recv().seq


class TestNonBlocking:
    def test_isend_completes(self):
        _f, a, b = make_fabric()
        req, cost = a.isend("b", b"x")
        assert req.test()
        assert cost.total > 0
        assert b.recv().payload == b"x"

    def test_irecv_waits_for_message(self):
        _f, a, b = make_fabric()
        req = b.irecv(tag=5)
        assert not req.test()
        a.send("b", b"late", tag=5)
        msg = req.wait(timeout=2.0)
        assert msg.payload == b"late"

    def test_probe(self):
        _f, a, b = make_fabric()
        assert not b.probe()
        a.send("b", b"x", tag=9)
        assert b.probe(tag=9)
        # probing does not consume
        assert b.recv(tag=9).payload == b"x"


class TestLifecycle:
    def test_closed_endpoint_raises_on_recv(self):
        _f, _a, b = make_fabric()
        b.close()
        with pytest.raises(ChannelClosedError):
            b.recv(timeout=0.5)

    def test_fabric_close_closes_all(self):
        fabric, _a, b = make_fabric()
        fabric.close()
        with pytest.raises(ChannelClosedError):
            b.recv(timeout=0.5)

    def test_fabric_counters(self):
        fabric, a, b = make_fabric()
        a.send("b", b"x" * 10)
        a.send("b", b"y" * 20)
        assert fabric.delivered == 2
        assert fabric.bytes_moved == 30

    def test_route_specific_link(self):
        fabric, a, b = make_fabric()
        fast = LinkSpec("fast", LinkKind.NVLINK, bandwidth=1e6)
        fabric.connect("a", "b", fast)
        cost = a.send("b", b"x" * 1000)
        assert cost.total == pytest.approx(0.001)  # 1000/1e6 ~ 0.001

    def test_no_link_no_default(self):
        fabric = Fabric()
        fabric.endpoint("x")
        fabric.endpoint("y")
        with pytest.raises(TransferError):
            fabric.endpoint("x").send("y", b"data")

    def test_cross_thread_delivery(self):
        _f, a, b = make_fabric()
        received = []

        def consumer():
            received.append(b.recv(timeout=2.0).payload)

        t = threading.Thread(target=consumer)
        t.start()
        time.sleep(0.02)
        a.send("b", b"threaded")
        t.join(2.0)
        assert received == [b"threaded"]


class TestRecvDeadline:
    def test_nonmatching_traffic_does_not_extend_timeout(self):
        # Regression: recv() used to reset its wait on every arriving
        # message, so a stream of non-matching traffic postponed the
        # timeout indefinitely.  The deadline must cover the whole call.
        _f, a, b = make_fabric()
        stop = threading.Event()

        def chatter():
            while not stop.is_set():
                a.send("b", b"noise", tag=1)
                time.sleep(0.01)

        t = threading.Thread(target=chatter, daemon=True)
        t.start()
        try:
            start = time.monotonic()
            with pytest.raises(TransferError):
                b.recv(tag=99, timeout=0.2)
            assert time.monotonic() - start < 1.0
        finally:
            stop.set()
            t.join(2.0)

    def test_parked_messages_still_deliverable(self):
        _f, a, b = make_fabric()
        a.send("b", b"early", tag=1)
        with pytest.raises(TransferError):
            b.recv(tag=2, timeout=0.05)
        assert b.recv(tag=1, timeout=0.5).payload == b"early"

    def test_zero_timeout_raises_immediately(self):
        _f, _a, b = make_fabric()
        with pytest.raises(TransferError):
            b.recv(timeout=0.0)


class TestScatter:
    def test_roundtrip_reassembles(self):
        _f, a, b = make_fabric()
        payload = bytes(range(256)) * 10
        chunks = [memoryview(payload)[i : i + 300] for i in range(0, len(payload), 300)]
        a.scatter_send("b", chunks, tag=3)
        msg = b.recv_scatter(tag=3, timeout=2.0)
        assert bytes(msg.payload) == payload
        assert msg.tag == 3
        assert "scatter" not in msg.meta

    def test_single_chunk(self):
        _f, a, b = make_fabric()
        a.scatter_send("b", [b"solo"])
        assert bytes(b.recv_scatter(timeout=2.0).payload) == b"solo"

    def test_no_wire_copy(self):
        # scatter_send must not snapshot the chunks: mutating the source
        # buffer before the receiver copies it shows through.
        _f, a, b = make_fabric()
        buf = bytearray(b"AAAA")
        a.scatter_send("b", [memoryview(buf)])
        buf[0] = ord("Z")
        assert bytes(b.recv_scatter(timeout=2.0).payload) == b"ZAAA"

    def test_cost_uses_pipelined_law(self):
        _f, a, b = make_fabric()
        payload = b"x" * 1000
        chunks = [memoryview(payload)[i : i + 100] for i in range(0, 1000, 100)]
        cost = a.scatter_send("b", chunks, virtual_bytes=10**6, lanes=2)
        link = LinkSpec("l", LinkKind.LOOPBACK, bandwidth=1000.0, latency=0.001)
        assert cost.total == pytest.approx(
            link.pipelined_transfer_time(10**6, 100, lanes=2)
        )
        # The receiver sees the cost exactly once, not once per chunk.
        msg = b.recv_scatter(timeout=2.0)
        assert msg.cost.total == pytest.approx(cost.total)
        assert msg.virtual_bytes == 10**6

    def test_recv_into_preallocated_buffer(self):
        _f, a, b = make_fabric()
        payload = b"chunked-payload!" * 4
        chunks = [memoryview(payload)[i : i + 16] for i in range(0, len(payload), 16)]
        a.scatter_send("b", chunks)
        into = bytearray(1024)
        msg = b.recv_scatter(timeout=2.0, into=into)
        assert bytes(msg.payload) == payload
        assert bytes(into[: len(payload)]) == payload

    def test_recv_into_too_small_rejected(self):
        _f, a, b = make_fabric()
        a.scatter_send("b", [b"0123456789"])
        with pytest.raises(TransferError):
            b.recv_scatter(timeout=2.0, into=bytearray(4))

    def test_recv_scatter_rejects_plain_message(self):
        _f, a, b = make_fabric()
        a.send("b", b"plain")
        with pytest.raises(TransferError):
            b.recv_scatter(timeout=2.0)

    def test_empty_chunk_list_rejected(self):
        _f, a, _b = make_fabric()
        with pytest.raises(TransferError):
            a.scatter_send("b", [])
