"""CLI and timeline-rendering tests."""

import pytest

from repro.cli import build_parser, main
from repro.errors import WorkflowError
from repro.analysis.timeline import render_timeline, summarize_trace
from repro.workflow.trace import Trace


class TestParser:
    def test_apps_command(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "tc1" in out and "ptychonn" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_fig10_args(self):
        args = build_parser().parse_args(
            ["fig10", "--app", "tc1", "--scale", "0.1", "--seed", "7"]
        )
        assert args.app == "tc1" and args.scale == 0.1 and args.seed == 7

    def test_timeline_defaults(self):
        args = build_parser().parse_args(["timeline"])
        assert args.strategy == "gpu" and args.width == 100

    def test_obs_defaults(self):
        args = build_parser().parse_args(["obs"])
        assert args.strategy == "gpu" and not args.sync
        assert args.export_trace is None

    def test_obs_export_args(self):
        args = build_parser().parse_args(
            ["obs", "--sync", "--export-trace", "t.json",
             "--export-metrics", "m.prom", "--export-events", "e.jsonl"]
        )
        assert args.sync
        assert args.export_trace == "t.json"
        assert args.export_metrics == "m.prom"
        assert args.export_events == "e.jsonl"


class TestObsCommand:
    def test_obs_runs_and_exports(self, capsys, tmp_path):
        # keep the run cheap: tiny synthetic dataset
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.prom"
        assert main([
            "obs", "--scale", "0.02", "--seed", "1",
            "--export-trace", str(trace_path),
            "--export-metrics", str(metrics_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "capture" in out and "end_to_end" in out
        assert "stage sum" in out and "vs end-to-end sum" in out

        import json

        doc = json.loads(trace_path.read_text())
        events = doc["traceEvents"]
        assert events
        by_tid = {}
        for e in events:
            if e["ph"] == "M":
                continue
            by_tid.setdefault(e["tid"], []).append(e["ts"])
        for ts in by_tid.values():
            assert ts == sorted(ts)
        assert "pipeline_stage_sim_seconds" in metrics_path.read_text()


class TestObsLineageFleet:
    def test_lineage_args(self):
        args = build_parser().parse_args(
            ["obs", "lineage", "2", "--consumers", "2", "--epochs", "1",
             "--slo-latency", "0.5", "--export-lineage", "l.jsonl"]
        )
        assert args.obs_mode == "lineage" and args.version == 2
        assert args.consumers == 2 and args.epochs == 1
        assert args.slo_latency == 0.5
        assert args.export_lineage == "l.jsonl"

    def test_fleet_defaults(self):
        args = build_parser().parse_args(["obs", "fleet"])
        assert args.obs_mode == "fleet"
        assert args.consumers == 4 and args.epochs == 3
        assert args.version is None if hasattr(args, "version") else True

    def test_lineage_prints_trace_per_version(self, capsys):
        assert main(["obs", "lineage", "--consumers", "2",
                     "--epochs", "1"]) == 0
        out = capsys.readouterr().out
        assert "lineage:" in out and "trace id:" in out
        assert "capture -> transfer" in out
        assert "end-to-end (capture -> first serve):" in out
        assert "BROKEN CAUSALITY" not in out
        assert "MISSING STAGES" not in out

    def test_lineage_unknown_version_fails(self, capsys):
        assert main(["obs", "lineage", "999", "--consumers", "2",
                     "--epochs", "1"]) == 1
        assert "not recorded" in capsys.readouterr().out

    def test_fleet_report_and_export(self, capsys, tmp_path):
        from repro.obs.lineage import read_lineage_jsonl

        path = tmp_path / "lineage.jsonl"
        assert main(["obs", "fleet", "--consumers", "3", "--epochs", "1",
                     "--export-lineage", str(path)]) == 0
        out = capsys.readouterr().out
        assert "consumer" in out and "p99.9" in out
        assert "latest published version:" in out
        assert "3 consumer(s)" in out
        back = read_lineage_jsonl(str(path))
        assert len(back) > 0
        for version in back.versions(back.models()[0]):
            assert back.complete(back.models()[0], version)


class TestTimelineRendering:
    def make_trace(self):
        trace = Trace()
        trace.add(0.0, "ckpt_begin", "producer", version=1)
        trace.add(0.5, "ckpt_stall_end", "producer", version=1)
        trace.add(2.0, "delivered", "engine", version=1)
        trace.add(2.0, "notified", "producer", version=1)
        trace.add(2.1, "load_begin", "consumer", version=1)
        trace.add(2.5, "load_done", "consumer", version=1)
        trace.add(2.5, "swap", "consumer", version=1)
        trace.add(10.0, "train_end", "producer")
        return trace

    def test_render_has_lanes_and_glyphs(self):
        text = render_timeline(self.make_trace(), width=50)
        assert "producer" in text and "consumer" in text and "engine" in text
        assert "C" in text and "S" in text and "E" in text

    def test_iteration_events_omitted(self):
        trace = self.make_trace()
        for i in range(100):
            trace.add(float(i) / 10, "iteration", "producer", iteration=i)
        text = render_timeline(trace, width=50)
        assert "iteration" not in text

    def test_empty_trace(self):
        assert render_timeline(Trace()) == "(empty trace)"

    def test_window_restriction(self):
        text = render_timeline(self.make_trace(), width=50, t_start=5.0, t_end=11.0)
        lanes = "\n".join(line for line in text.splitlines() if "|" in line)
        assert "E" in lanes and "C" not in lanes

    def test_width_validation(self):
        with pytest.raises(WorkflowError):
            render_timeline(self.make_trace(), width=5)

    def test_summarize(self):
        summary = summarize_trace(self.make_trace())
        assert "ckpt_begin=1" in summary and "swap=1" in summary

    def test_summary_counts(self):
        trace = self.make_trace()
        trace.add(3.0, "swap", "consumer", version=2)
        assert "swap=2" in summarize_trace(trace)
