"""Rollout policy tests: validation, routing hard cap, stagger jitter."""

import math

import pytest

from repro.errors import RolloutError
from repro.rollout import CanaryRouter, RolloutPolicy


class TestPolicyValidation:
    def test_defaults_valid(self):
        policy = RolloutPolicy()
        assert 0 < policy.canary_fraction <= 1

    @pytest.mark.parametrize("fraction", [0.0, -0.1, 1.5])
    def test_bad_fraction(self, fraction):
        with pytest.raises(RolloutError):
            RolloutPolicy(canary_fraction=fraction)

    def test_bad_min_samples(self):
        with pytest.raises(RolloutError):
            RolloutPolicy(min_canary_samples=0)

    def test_window_must_cover_min_samples(self):
        with pytest.raises(RolloutError):
            RolloutPolicy(min_canary_samples=10, window=5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_loss_ratio": 0.0},
            {"max_loss_ratio": -1.0},
            {"loss_tolerance": -1e-9},
            {"max_latency_ratio": 0.0},
            {"max_integrity_errors": -1},
            {"stagger": -0.5},
        ],
    )
    def test_bad_thresholds(self, kwargs):
        with pytest.raises(RolloutError):
            RolloutPolicy(**kwargs)

    def test_none_disables_checks(self):
        policy = RolloutPolicy(max_loss_ratio=None, max_latency_ratio=None)
        assert policy.max_loss_ratio is None
        assert policy.max_latency_ratio is None


class TestCanaryRouter:
    @pytest.mark.parametrize(
        "fraction", [0.01, 0.1, 0.25, 1 / 3, 0.5, 0.75, 0.999, 1.0]
    )
    @pytest.mark.parametrize("n", [1, 7, 64, 1000])
    def test_hard_cap_every_prefix(self, fraction, n):
        # The cap must hold after EVERY request, not just at the end:
        # a bad version's exposure is bounded at all times.
        router = CanaryRouter(fraction)
        for k in range(1, n + 1):
            router.route()
            assert router.canary_requests == math.floor(k * fraction)
            assert router.canary_requests <= fraction * k

    def test_share_converges_to_fraction(self):
        router = CanaryRouter(0.2)
        for _ in range(1000):
            router.route()
        assert router.canary_share == pytest.approx(0.2, abs=1e-3)

    def test_fraction_one_routes_everything(self):
        router = CanaryRouter(1.0)
        assert all(router.route() for _ in range(10))

    def test_bad_fraction_rejected(self):
        with pytest.raises(RolloutError):
            CanaryRouter(0.0)

    def test_share_zero_before_any_request(self):
        assert CanaryRouter(0.5).canary_share == 0.0


class TestPromoteDelay:
    def test_zero_stagger_means_no_delay(self):
        assert RolloutPolicy(stagger=0.0).promote_delay("c0") == 0.0

    def test_delay_within_stagger(self):
        policy = RolloutPolicy(stagger=2.0, seed=7)
        for name in ("c0", "c1", "c2", "c3"):
            delay = policy.promote_delay(name)
            assert 0.0 <= delay < 2.0

    def test_deterministic_per_consumer(self):
        a = RolloutPolicy(stagger=1.0, seed=3)
        b = RolloutPolicy(stagger=1.0, seed=3)
        assert a.promote_delay("c0") == b.promote_delay("c0")

    def test_consumers_spread_out(self):
        policy = RolloutPolicy(stagger=1.0, seed=0)
        delays = {policy.promote_delay(f"c{i}") for i in range(8)}
        assert len(delays) == 8  # distinct draws: the wave is staggered

    def test_seed_changes_the_wave(self):
        one = RolloutPolicy(stagger=1.0, seed=1).promote_delay("c0")
        two = RolloutPolicy(stagger=1.0, seed=2).promote_delay("c0")
        assert one != two
