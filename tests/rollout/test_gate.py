"""Health-gate tests: verdict ordering, thresholds, hard failures."""

import numpy as np
import pytest

from repro.rollout import HealthGate, RollbackReason, RolloutPolicy, Verdict


def make_gate(**overrides):
    kwargs = dict(
        canary_fraction=0.25,
        min_canary_samples=4,
        window=16,
        max_loss_ratio=1.5,
        max_latency_ratio=None,
    )
    kwargs.update(overrides)
    return HealthGate(RolloutPolicy(**kwargs))


def finite_pred():
    return np.ones((1, 1), dtype=np.float32)


class TestVerdicts:
    def test_pending_without_samples(self):
        gate = make_gate()
        decision = gate.decision()
        assert decision.verdict is Verdict.PENDING

    def test_pending_until_min_samples(self):
        gate = make_gate()
        gate.observe_primary(1.0, 0.001)
        for _ in range(3):
            gate.observe_canary(finite_pred(), 1.0, 0.001)
        assert gate.decision().verdict is Verdict.PENDING

    def test_pending_without_incumbent_evidence(self):
        gate = make_gate()
        for _ in range(4):
            gate.observe_canary(finite_pred(), 1.0, 0.001)
        # Enough canary samples but nothing to compare against.
        assert gate.decision().verdict is Verdict.PENDING

    def test_promote_when_healthy(self):
        gate = make_gate()
        for _ in range(8):
            gate.observe_primary(1.0, 0.001)
        for _ in range(4):
            gate.observe_canary(finite_pred(), 0.9, 0.001)
        decision = gate.decision()
        assert decision.verdict is Verdict.PROMOTE

    def test_loss_regression_rolls_back(self):
        gate = make_gate()
        for _ in range(8):
            gate.observe_primary(1.0, 0.001)
        for _ in range(4):
            gate.observe_canary(finite_pred(), 10.0, 0.001)
        decision = gate.decision()
        assert decision.verdict is Verdict.ROLLBACK
        assert decision.reason is RollbackReason.LOSS_REGRESSION

    def test_loss_tolerance_covers_zero_incumbent(self):
        # Incumbent loss ~0 must not make the ratio test fire on an
        # equally-perfect candidate.
        gate = make_gate(loss_tolerance=1e-6)
        for _ in range(8):
            gate.observe_primary(0.0, 0.001)
        for _ in range(4):
            gate.observe_canary(finite_pred(), 0.0, 0.001)
        assert gate.decision().verdict is Verdict.PROMOTE

    def test_loss_check_disabled_by_none(self):
        gate = make_gate(max_loss_ratio=None)
        for _ in range(4):
            gate.observe_canary(finite_pred(), 1e9, 0.001)
        assert gate.decision().verdict is Verdict.PROMOTE


class TestHardFailures:
    def test_nan_output_rolls_back_at_any_sample_count(self):
        gate = make_gate()
        bad = np.array([[float("nan")]], dtype=np.float32)
        gate.observe_canary(bad, 1.0, 0.001)
        decision = gate.decision()
        assert decision.verdict is Verdict.ROLLBACK
        assert decision.reason is RollbackReason.NAN_OUTPUT

    def test_inf_output_rolls_back(self):
        gate = make_gate()
        bad = np.array([[float("inf")]], dtype=np.float32)
        gate.observe_canary(bad, 1.0, 0.001)
        assert gate.decision().reason is RollbackReason.NAN_OUTPUT

    def test_integrity_errors_over_budget_roll_back(self):
        gate = make_gate(max_integrity_errors=1)
        gate.record_integrity_error()
        assert gate.decision().verdict is Verdict.PENDING  # within budget
        gate.record_integrity_error()
        decision = gate.decision()
        assert decision.verdict is Verdict.ROLLBACK
        assert decision.reason is RollbackReason.INTEGRITY

    def test_nan_loss_never_counts_as_scored(self):
        gate = make_gate()
        for _ in range(10):
            gate.observe_canary(finite_pred(), float("nan"), 0.001)
        assert gate.canary_scored == 0
        assert gate.canary_served == 10
        assert gate.decision().verdict is Verdict.PENDING


class TestLatencyGate:
    def test_latency_regression_rolls_back(self):
        gate = make_gate(max_latency_ratio=2.0)
        for _ in range(8):
            gate.observe_primary(1.0, 0.001)
        for _ in range(4):
            gate.observe_canary(finite_pred(), 1.0, 0.010)
        decision = gate.decision()
        assert decision.verdict is Verdict.ROLLBACK
        assert decision.reason is RollbackReason.LATENCY_REGRESSION

    def test_latency_within_ratio_promotes(self):
        gate = make_gate(max_latency_ratio=2.0)
        for _ in range(8):
            gate.observe_primary(1.0, 0.001)
        for _ in range(4):
            gate.observe_canary(finite_pred(), 1.0, 0.0015)
        assert gate.decision().verdict is Verdict.PROMOTE

    def test_windows_slide(self):
        gate = make_gate(window=4)
        # Old terrible canary losses fall out of the window.
        for _ in range(8):
            gate.observe_primary(1.0, 0.001)
        for _ in range(4):
            gate.observe_canary(finite_pred(), 100.0, 0.001)
        assert gate.decision().verdict is Verdict.ROLLBACK
        for _ in range(4):
            gate.observe_canary(finite_pred(), 1.0, 0.001)
        assert gate.decision().verdict is Verdict.PROMOTE
