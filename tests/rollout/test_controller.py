"""Rollout controller tests: stage, promote, rollback, fleet fan-out."""

import numpy as np
import pytest

from repro import CaptureMode, Viper
from repro.core.notification import is_quarantine
from repro.dnn.layers import Dense
from repro.dnn.losses import MSELoss
from repro.dnn.models import Sequential
from repro.dnn.optimizers import SGD
from repro.rollout import RolloutController, RolloutPolicy


def builder():
    model = Sequential([Dense(1, name="d")], input_shape=(2,), seed=3)
    model.compile(SGD(0.01), MSELoss())
    return model


def publish_weights(viper, value):
    state = builder().state_dict()
    state["d/W"][...] = value
    state["d/b"][...] = 0.0
    viper.save_weights("m", state, mode=CaptureMode.SYNC)


def make_policy(**overrides):
    kwargs = dict(canary_fraction=0.25, min_canary_samples=2, window=8)
    kwargs.update(overrides)
    return RolloutPolicy(**kwargs)


PRED = np.ones((1, 1), dtype=np.float32)


@pytest.fixture
def setup():
    viper = Viper()
    consumer = viper.consumer(model_builder=builder)
    consumer.subscribe()
    ctrl = RolloutController(consumer, "m", make_policy())
    yield viper, consumer, ctrl
    viper.close()


def feed_healthy(ctrl, n=4):
    for _ in range(n):
        ctrl.observe_primary(1.0, 0.001)
    for _ in range(n):
        snap = ctrl.route()
        # Force enough canary evidence regardless of routing stride.
        ctrl.observe_canary(PRED, 0.5, 0.001, 0.1)
        del snap


class TestStaging:
    def test_stage_newest_without_touching_primary(self, setup):
        viper, consumer, ctrl = setup
        publish_weights(viper, 1.0)
        assert ctrl.maybe_stage(0.0)
        assert ctrl.candidate_version == 1
        assert consumer.current_version == 0
        assert consumer.canary_snapshot().version == 1

    def test_no_stage_when_current(self, setup):
        viper, consumer, ctrl = setup
        assert not ctrl.maybe_stage(0.0)
        assert not ctrl.active

    def test_restage_same_version_is_noop(self, setup):
        viper, _consumer, ctrl = setup
        publish_weights(viper, 1.0)
        assert ctrl.maybe_stage(0.0)
        assert not ctrl.maybe_stage(0.1)

    def test_newer_publish_supersedes_candidate(self, setup):
        viper, consumer, ctrl = setup
        publish_weights(viper, 1.0)
        ctrl.maybe_stage(0.0)
        publish_weights(viper, 2.0)
        assert ctrl.maybe_stage(0.1)
        assert ctrl.candidate_version == 2
        # The displaced candidate was outdated, not condemned.
        record, _ = viper.metadata.record("m", 1)
        assert not record.quarantined
        assert any(d["action"] == "superseded" for d in ctrl.decisions)


class TestPromotion:
    def test_healthy_candidate_promotes(self, setup):
        viper, consumer, ctrl = setup
        publish_weights(viper, 1.0)
        ctrl.maybe_stage(0.0)
        feed_healthy(ctrl)
        assert ctrl.tick(1.0)
        assert consumer.current_version == 1
        assert not ctrl.active
        assert ctrl.promotions == 1
        assert viper.handler.stats.snapshot().canary_promotions == 1
        actions = [d["action"] for d in ctrl.decisions]
        assert actions == ["stage", "promote"]

    def test_pending_candidate_does_not_promote(self, setup):
        viper, consumer, ctrl = setup
        publish_weights(viper, 1.0)
        ctrl.maybe_stage(0.0)
        assert not ctrl.tick(0.5)       # no evidence yet
        assert consumer.current_version == 0

    def test_stagger_defers_the_swap(self):
        viper = Viper()
        consumer = viper.consumer(model_builder=builder)
        consumer.subscribe()
        policy = make_policy(stagger=2.0, seed=5)
        ctrl = RolloutController(consumer, "m", policy, name="c0")
        delay = policy.promote_delay("c0")
        assert delay > 0
        publish_weights(viper, 1.0)
        ctrl.maybe_stage(0.0)
        feed_healthy(ctrl)
        verdict_at = 1.0
        assert not ctrl.tick(verdict_at)                     # schedules
        assert not ctrl.tick(verdict_at + delay * 0.5)       # not yet due
        assert ctrl.tick(verdict_at + delay)                 # due now
        assert consumer.current_version == 1
        viper.close()


class TestRollback:
    def test_loss_regression_quarantines(self, setup):
        viper, consumer, ctrl = setup
        publish_weights(viper, 1.0)
        ctrl.maybe_stage(0.0)
        for _ in range(4):
            ctrl.observe_primary(0.1, 0.001)
        for _ in range(2):
            ctrl.observe_canary(PRED, 50.0, 0.001, 0.5)
        assert not ctrl.active
        assert ctrl.rollbacks == 1
        record, _ = viper.metadata.record("m", 1)
        assert record.quarantined
        assert record.quarantine_reason == "loss_regression"
        # Latest rewinds past the condemned version entirely.
        latest, _ = viper.metadata.latest("m")
        assert latest is None
        assert consumer.current_version == 0
        assert viper.handler.stats.snapshot().canary_rollbacks == 1
        assert len(ctrl.time_to_detect) == 1
        assert ctrl.time_to_detect[0] >= 0.0

    def test_rollback_fans_out_a_quarantine_note(self, setup):
        viper, consumer, ctrl = setup
        peer_sub = viper.broker.subscribe(viper.topic)
        publish_weights(viper, 1.0)
        ctrl.maybe_stage(0.0)
        ctrl.observe_primary(0.1, 0.001)
        nan_pred = np.array([[float("nan")]], dtype=np.float32)
        ctrl.observe_canary(nan_pred, float("nan"), 0.001, 0.2)
        notes = [n for n in peer_sub.drain() if is_quarantine(n)]
        assert len(notes) == 1
        assert notes[0].version == 1
        assert notes[0].payload["reason"] == "nan_output"

    def test_peer_quarantine_drops_local_candidate(self):
        viper = Viper()
        c1 = viper.consumer(model_builder=builder, name="c1")
        c2 = viper.consumer(model_builder=builder, name="c2")
        c1.subscribe()
        c2.subscribe()
        ctrl1 = RolloutController(c1, "m", make_policy(), name="c1")
        ctrl2 = RolloutController(c2, "m", make_policy(), name="c2")
        publish_weights(viper, 1.0)
        assert ctrl1.maybe_stage(0.0)
        assert ctrl2.maybe_stage(0.0)
        # c1's gate condemns v1.
        ctrl1.observe_primary(0.1, 0.001)
        nan_pred = np.array([[float("nan")]], dtype=np.float32)
        ctrl1.observe_canary(nan_pred, float("nan"), 0.001, 0.2)
        assert ctrl1.rollbacks == 1
        # c2 honors the fan-out without double-quarantining.
        for note in c2._sub.drain():
            if is_quarantine(note):
                ctrl2.on_quarantine_note(note, 0.3)
        assert not ctrl2.active
        assert ctrl2.peer_drops == 1
        assert ctrl2.rollbacks == 0
        record, _ = viper.metadata.record("m", 1)
        assert record.quarantine_reason == "nan_output"  # c1's verdict kept
        assert viper.handler.stats.snapshot().canary_rollbacks == 1
        viper.close()

    def test_integrity_failure_at_staging_quarantines(self, setup):
        from repro.resilience import FaultKind, FaultPlan, FaultRule

        viper, consumer, ctrl = setup
        publish_weights(viper, 1.0)
        plan = FaultPlan(
            [FaultRule(site="store.get:*", kind=FaultKind.CORRUPT,
                       probability=1.0)],
            seed=11,
        )
        plan.arm(viper.cluster)
        assert not ctrl.maybe_stage(0.0)
        plan.disarm()
        assert not ctrl.active
        record, _ = viper.metadata.record("m", 1)
        assert record.quarantined
        assert record.quarantine_reason == "integrity"
        # The corrupt candidate never reached any buffer slot.
        assert consumer.current_version == 0
        assert consumer.canary_snapshot() is None

    def test_quarantined_version_never_restaged(self, setup):
        viper, consumer, ctrl = setup
        publish_weights(viper, 1.0)
        ctrl.maybe_stage(0.0)
        ctrl.observe_primary(0.1, 0.001)
        for _ in range(2):
            ctrl.observe_canary(PRED, 50.0, 0.001, 0.5)
        assert ctrl.rollbacks == 1
        # The condemned version no longer resolves as latest: staging
        # again is a no-op, the fleet stays on the last-known-good.
        assert not ctrl.maybe_stage(1.0)
        publish_weights(viper, 1.0)  # v2, healthy
        assert ctrl.maybe_stage(2.0)
        assert ctrl.candidate_version == 2


class TestDecisionLog:
    def test_jsonl_export(self, setup, tmp_path):
        import json

        viper, _consumer, ctrl = setup
        publish_weights(viper, 1.0)
        ctrl.maybe_stage(0.0)
        feed_healthy(ctrl)
        ctrl.tick(1.0)
        path = tmp_path / "decisions.jsonl"
        count = ctrl.write_decision_log(path)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == count == len(ctrl.decisions)
        assert lines[0]["action"] == "stage"
        assert lines[-1]["action"] == "promote"
        assert all(e["consumer"] == ctrl.name for e in lines)
