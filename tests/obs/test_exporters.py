"""Exporter format tests: Chrome trace JSON, Prometheus text, JSONL."""

import json
import math

from repro.obs.exporters import (
    chrome_trace,
    prometheus_text,
    spans_to_chrome_events,
    trace_to_chrome_events,
    write_chrome_trace,
    write_jsonl_events,
    write_prometheus,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SpanTracer
from repro.workflow.trace import Trace


def _tracer_with_spans():
    tracer = SpanTracer()
    parent = tracer.open("checkpoint", track="pipeline", start_sim=1.0, version=1)
    tracer.record("capture", start_sim=1.0, end_sim=1.4, track="producer",
                  parent=parent)
    tracer.record("load", start_sim=2.0, end_sim=2.6, track="consumer",
                  parent=parent)
    tracer.close(parent, end_sim=2.6, outcome="swapped")
    return tracer


def _pipeline_trace():
    trace = Trace()
    trace.add(1.0, "ckpt_begin", "producer", version=1)
    trace.add(1.4, "ckpt_stall_end", "producer", version=1)
    trace.add(1.9, "delivered", "engine", version=1)
    trace.add(2.0, "load_begin", "consumer", version=1)
    trace.add(2.6, "load_done", "consumer", version=1)
    trace.add(2.6, "swap", "consumer", version=1)
    trace.add(3.0, "train_end", "producer", iteration=100)
    return trace


class TestSpansToChrome:
    def test_complete_events_in_microseconds(self):
        events = spans_to_chrome_events(_tracer_with_spans().spans())
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 3
        capture = next(e for e in xs if e["name"] == "capture")
        assert capture["ts"] == 1.0e6
        assert capture["dur"] == 0.4e6
        parent = next(e for e in xs if e["name"] == "checkpoint")
        assert capture["args"]["parent_id"] == parent["args"]["span_id"]

    def test_metadata_names_tracks(self):
        events = spans_to_chrome_events(_tracer_with_spans().spans())
        meta = {e["args"]["name"]: e["tid"] for e in events if e["ph"] == "M"}
        assert set(meta) == {"pipeline", "producer", "consumer"}
        capture = next(e for e in events if e.get("name") == "capture")
        assert capture["tid"] == meta["producer"]

    def test_unfinished_spans_skipped(self):
        tracer = SpanTracer()
        tracer.open("never-closed")
        assert spans_to_chrome_events(tracer.spans()) == []

    def test_wall_clock_selectable(self):
        tracer = SpanTracer(wall_now=iter([10.0, 10.5]).__next__)
        sp = tracer.open("w", track="t", start_sim=0.0)
        tracer.close(sp, end_sim=0.0)
        (x,) = [e for e in spans_to_chrome_events(tracer.spans(), clock="wall")
                if e["ph"] == "X"]
        assert x["ts"] == 10.0e6
        assert x["dur"] == 0.5e6

    def test_monotonic_ts_per_track(self):
        tracer = SpanTracer()
        for i in range(5):
            tracer.record("s", start_sim=float(4 - i), end_sim=float(5 - i),
                          track="a")
        events = [e for e in spans_to_chrome_events(tracer.spans())
                  if e["ph"] != "M"]
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)


class TestTraceToChrome:
    def test_paired_kinds_become_duration_events(self):
        events = trace_to_chrome_events(_pipeline_trace())
        xs = {e["name"]: e for e in events if e["ph"] == "X"}
        assert set(xs) == {"capture", "transfer", "load"}
        assert xs["capture"]["ts"] == 1.0e6
        assert xs["capture"]["dur"] == 0.4e6
        assert xs["transfer"]["ts"] == 1.4e6
        assert xs["transfer"]["dur"] == 0.5e6
        assert xs["load"]["dur"] == 0.6e6

    def test_unpaired_kinds_become_instants(self):
        events = trace_to_chrome_events(_pipeline_trace())
        instants = {e["name"] for e in events if e["ph"] == "i"}
        assert "swap" in instants
        assert "train_end" in instants

    def test_sync_mode_without_delivered_degrades(self):
        trace = Trace()
        trace.add(1.0, "ckpt_begin", "producer", version=1)
        trace.add(1.4, "ckpt_stall_end", "producer", version=1)
        events = trace_to_chrome_events(trace)
        xs = [e for e in events if e["ph"] == "X"]
        assert [e["name"] for e in xs] == ["capture"]

    def test_kinds_filter(self):
        events = trace_to_chrome_events(_pipeline_trace(), kinds=("swap",))
        named = [e for e in events if e["ph"] != "M"]
        assert [e["name"] for e in named] == ["swap"]


class TestChromeTraceDocument:
    def test_merged_document_shares_track_namespace(self):
        doc = chrome_trace(
            _tracer_with_spans().spans(), _pipeline_trace(), clock="sim"
        )
        events = doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        assert events, "no events exported"
        meta = {e["args"]["name"]: e["tid"] for e in events if e["ph"] == "M"}
        # "consumer" is both a span track and a trace actor: one lane
        assert len([n for n in meta if n == "consumer"]) == 1
        span_load = [e for e in events
                     if e.get("name") == "load" and "span_id" in e["args"]]
        trace_load = [e for e in events
                      if e.get("name") == "load" and "span_id" not in e["args"]]
        assert span_load and trace_load
        assert span_load[0]["tid"] == trace_load[0]["tid"] == meta["consumer"]

    def test_per_track_ts_monotonic(self):
        doc = chrome_trace(_tracer_with_spans().spans(), _pipeline_trace())
        by_tid = {}
        for e in doc["traceEvents"]:
            if e["ph"] == "M":
                continue
            by_tid.setdefault(e["tid"], []).append(e["ts"])
        for ts in by_tid.values():
            assert ts == sorted(ts)

    def test_written_file_is_valid_json(self, tmp_path):
        path = str(tmp_path / "trace.json")
        assert write_chrome_trace(
            path, spans=_tracer_with_spans().spans(), trace=_pipeline_trace()
        ) == path
        doc = json.loads(open(path, encoding="utf-8").read())
        assert doc["traceEvents"]


class TestPrometheusText:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("reqs_total", model="tc1").inc(3)
        reg.gauge("depth").set(1.5)
        text = prometheus_text(reg)
        assert "# TYPE reqs_total counter" in text
        assert 'reqs_total{model="tc1"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "depth 1.5" in text
        assert text.endswith("\n")

    def test_histogram_series(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", buckets=(1.0, 2.0), stage="load")
        h.observe(0.5)
        h.observe(1.5)
        text = prometheus_text(reg)
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{stage="load",le="1"} 1' in text
        assert 'lat_seconds_bucket{stage="load",le="2"} 2' in text
        assert 'lat_seconds_bucket{stage="load",le="+Inf"} 2' in text
        assert 'lat_seconds_sum{stage="load"} 2' in text
        assert 'lat_seconds_count{stage="load"} 2' in text

    def test_type_header_emitted_once_per_name(self):
        reg = MetricsRegistry()
        reg.counter("reqs", m="a").inc()
        reg.counter("reqs", m="b").inc()
        text = prometheus_text(reg)
        assert text.count("# TYPE reqs counter") == 1

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c", path='a"b\\c\nd').inc()
        text = prometheus_text(reg)
        assert r'path="a\"b\\c\nd"' in text

    def test_empty_registry(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_write_prometheus(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        path = str(tmp_path / "m.prom")
        assert write_prometheus(path, reg) == path
        assert "# TYPE x counter" in open(path, encoding="utf-8").read()


class TestJsonl:
    def test_spans_then_events_one_object_per_line(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        n = write_jsonl_events(
            path, spans=_tracer_with_spans().spans(), trace=_pipeline_trace()
        )
        lines = open(path, encoding="utf-8").read().splitlines()
        assert len(lines) == n == 3 + 7
        objs = [json.loads(line) for line in lines]
        assert [o["type"] for o in objs[:3]] == ["span"] * 3
        assert [o["type"] for o in objs[3:]] == ["event"] * 7
        span = objs[0]
        assert {"name", "span_id", "track", "start_sim", "end_sim",
                "sim_duration", "attrs"} <= set(span)
        event = objs[3]
        assert event["kind"] == "ckpt_begin"
        assert event["data"]["version"] == 1

    def test_unfinished_spans_skipped(self, tmp_path):
        tracer = SpanTracer()
        tracer.open("open")
        path = str(tmp_path / "e.jsonl")
        spans = tracer.open_spans()
        assert write_jsonl_events(path, spans=spans) == 0

    def test_numpy_values_serialize(self, tmp_path):
        import numpy as np

        tracer = SpanTracer()
        tracer.record("s", start_sim=0.0, end_sim=1.0, loss=np.float64(0.5))
        path = str(tmp_path / "np.jsonl")
        write_jsonl_events(path, spans=tracer.spans())
        obj = json.loads(open(path, encoding="utf-8").read())
        assert obj["attrs"]["loss"] == 0.5
        assert not math.isnan(obj["sim_duration"])
