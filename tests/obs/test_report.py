"""Stage-breakdown tests: decomposition, telescoping consistency, table."""

import pytest

from repro.obs.report import format_stage_table, stage_breakdown
from repro.workflow.trace import Trace


def _full_pipeline_trace():
    trace = Trace()
    # warm-up model: swap only, no pipeline
    trace.add(0.0, "swap", "consumer", version=0)
    # v1: full async pipeline
    trace.add(10.0, "ckpt_begin", "producer", version=1)
    trace.add(10.4, "ckpt_stall_end", "producer", version=1)
    trace.add(11.0, "delivered", "engine", version=1)
    trace.add(11.1, "notified", "producer", version=1)
    trace.add(11.3, "load_begin", "consumer", version=1)
    trace.add(12.0, "load_done", "consumer", version=1)
    trace.add(12.0, "swap", "consumer", version=1)
    # v2: superseded before it could swap
    trace.add(20.0, "ckpt_begin", "producer", version=2)
    trace.add(20.4, "ckpt_stall_end", "producer", version=2)
    trace.add(21.0, "superseded", "consumer", version=2)
    return trace


class TestStageBreakdown:
    def test_stage_durations(self):
        b = stage_breakdown(_full_pipeline_trace())
        stages = b.per_version[1]
        assert stages["capture"] == pytest.approx(0.4)
        assert stages["transfer"] == pytest.approx(0.6)
        assert stages["notify"] == pytest.approx(0.1)
        assert stages["wait"] == pytest.approx(0.2)
        assert stages["load"] == pytest.approx(0.7)
        assert stages["swap"] == pytest.approx(0.0)

    def test_stage_sum_telescopes_to_end_to_end(self):
        b = stage_breakdown(_full_pipeline_trace())
        for version, stages in b.per_version.items():
            assert sum(stages.values()) == pytest.approx(b.end_to_end[version])
        assert b.end_to_end[1] == pytest.approx(2.0)

    def test_warmup_version_excluded(self):
        b = stage_breakdown(_full_pipeline_trace())
        assert 0 not in b.per_version
        assert 0 not in b.end_to_end

    def test_superseded_version_reported_unfinished(self):
        b = stage_breakdown(_full_pipeline_trace())
        assert b.unfinished == (2,)
        assert 2 not in b.per_version

    def test_sync_mode_trace_without_delivered(self):
        trace = Trace()
        trace.add(1.0, "ckpt_begin", "producer", version=1)
        trace.add(2.0, "ckpt_stall_end", "producer", version=1)
        trace.add(2.1, "notified", "producer", version=1)
        trace.add(2.1, "load_begin", "consumer", version=1)
        trace.add(2.5, "load_done", "consumer", version=1)
        trace.add(2.5, "swap", "consumer", version=1)
        b = stage_breakdown(trace)
        stages = b.per_version[1]
        assert stages["transfer"] == pytest.approx(0.0)
        assert sum(stages.values()) == pytest.approx(b.end_to_end[1])

    def test_stage_accessor_and_stats(self):
        b = stage_breakdown(_full_pipeline_trace())
        load = b.stage("load")
        assert load.count == 1
        assert load.mean == pytest.approx(0.7)
        assert load.total == pytest.approx(0.7)
        assert load.percentile(50) == pytest.approx(0.7)
        assert b.stage("no-such-stage") is None

    def test_empty_trace(self):
        b = stage_breakdown(Trace())
        assert b.per_version == {}
        assert b.unfinished == ()
        table = format_stage_table(b)
        assert "0 checkpoint(s)" in table


class TestFormatStageTable:
    def test_table_contains_all_stages_and_consistency_line(self):
        table = format_stage_table(stage_breakdown(_full_pipeline_trace()))
        for stage in ("capture", "transfer", "notify", "wait", "load",
                      "swap", "end_to_end"):
            assert stage in table
        assert "stage sum 2.0000s vs end-to-end sum 2.0000s" in table
        assert "1 checkpoint(s)" in table
        assert "unfinished" in table
        assert "v2" in table
