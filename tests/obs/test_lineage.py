"""Lineage ledger unit tests: headers, ordering, paths, exporters."""

import json

import pytest

from repro.errors import ViperError
from repro.obs.lineage import (
    LIFECYCLE_STAGES,
    NULL_LINEAGE,
    REQUIRED_STAGES,
    LifecycleLedger,
    NullLineage,
    TraceContext,
    Transition,
    read_lineage_jsonl,
)


def walk(ledger, ctx, *, start=0.0, step=0.1, actor="producer",
         stages=REQUIRED_STAGES):
    """Record one clean pass through ``stages`` at fixed cadence."""
    for i, stage in enumerate(stages):
        ledger.record(ctx, stage, sim_time=start + i * step, actor=actor)


class TestTraceContext:
    def test_header_round_trip(self):
        ctx = TraceContext.make("m", 7)
        back = TraceContext.from_header(ctx.to_header())
        assert back == ctx

    def test_make_mints_distinct_trace_ids(self):
        a = TraceContext.make("m", 1)
        b = TraceContext.make("m", 1)
        assert a.trace_id != b.trace_id

    def test_child_keeps_trace_reparents_span(self):
        ctx = TraceContext.make("m", 1)
        kid = ctx.child(42)
        assert kid.trace_id == ctx.trace_id
        assert kid.span_id == 42
        assert kid.version == ctx.version

    @pytest.mark.parametrize("header", [
        "nonsense", "a;b;c", "a;b;c;d;e", "tid;not-an-int;m;1", "tid;0;m;x",
    ])
    def test_malformed_header_raises(self, header):
        with pytest.raises(ViperError):
            TraceContext.from_header(header)

    def test_model_name_with_semicolon_rejected(self):
        with pytest.raises(ViperError):
            TraceContext.make("bad;name", 1)


class TestLedgerRecording:
    def test_lifecycle_ordered_and_complete(self):
        ledger = LifecycleLedger()
        ctx = TraceContext.make("m", 1)
        walk(ledger, ctx)
        stages = [t.stage for t in ledger.lifecycle("m", 1)]
        assert stages == list(REQUIRED_STAGES)
        assert ledger.complete("m", 1)
        assert ledger.missing_stages("m", 1) == ()
        assert ledger.trace_ids("m", 1) == (ctx.trace_id,)

    def test_out_of_order_appends_sort_by_sim_time(self):
        ledger = LifecycleLedger()
        ctx = TraceContext.make("m", 1)
        ledger.record(ctx, "publish", sim_time=2.0, actor="metadata")
        ledger.record(ctx, "capture", sim_time=1.0, actor="producer")
        assert [t.stage for t in ledger.lifecycle("m", 1)] == [
            "capture", "publish",
        ]

    def test_missing_stage_reported(self):
        ledger = LifecycleLedger()
        ctx = TraceContext.make("m", 1)
        walk(ledger, ctx, stages=("capture", "transfer", "publish"))
        assert not ledger.complete("m", 1)
        assert ledger.missing_stages("m", 1) == (
            "notify", "swap", "first_serve",
        )

    def test_record_header_empty_is_silent_noop(self):
        ledger = LifecycleLedger()
        assert ledger.record_header("", "capture", sim_time=0.0,
                                    actor="producer") is None
        assert len(ledger) == 0

    def test_record_once_dedupes_per_actor(self):
        ledger = LifecycleLedger()
        header = TraceContext.make("m", 1).to_header()
        first = ledger.record_once(header, "first_serve", sim_time=1.0,
                                   actor="c0")
        dup = ledger.record_once(header, "first_serve", sim_time=2.0,
                                 actor="c0")
        other = ledger.record_once(header, "first_serve", sim_time=3.0,
                                   actor="c1")
        assert first is not None and other is not None and dup is None
        assert len(ledger) == 2

    def test_versions_and_models_enumerate(self):
        ledger = LifecycleLedger()
        for model, version in (("a", 1), ("a", 2), ("b", 1)):
            walk(ledger, TraceContext.make(model, version))
        assert ledger.models() == ("a", "b")
        assert ledger.versions("a") == [1, 2]

    def test_consumers_lists_swapping_actors(self):
        ledger = LifecycleLedger()
        ctx = TraceContext.make("m", 1)
        for name in ("c1", "c0"):
            ledger.record(ctx, "swap", sim_time=1.0, actor=name)
        ledger.record(ctx, "capture", sim_time=0.0, actor="producer")
        assert ledger.consumers("m", 1) == ("c0", "c1")


class TestCriticalPath:
    def test_edges_follow_earliest_occurrence(self):
        ledger = LifecycleLedger()
        ctx = TraceContext.make("m", 1)
        walk(ledger, ctx, actor="c-fast")
        # A slower replica's swap/first_serve must not move the path.
        ledger.record(ctx, "swap", sim_time=9.0, actor="c-slow")
        ledger.record(ctx, "first_serve", sim_time=9.5, actor="c-slow")
        path = ledger.critical_path("m", 1)
        assert [s.to_stage for s in path] == list(REQUIRED_STAGES[1:])
        assert all(s.actor != "c-slow" for s in path)
        assert all(s.duration >= 0 for s in path)
        assert path[-1].end == pytest.approx(0.5)

    def test_end_to_end_capture_to_first_serve(self):
        ledger = LifecycleLedger()
        walk(ledger, TraceContext.make("m", 1), start=2.0, step=0.25)
        assert ledger.end_to_end("m", 1) == pytest.approx(
            0.25 * (len(REQUIRED_STAGES) - 1)
        )

    def test_end_to_end_nan_while_open(self):
        import math

        ledger = LifecycleLedger()
        ctx = TraceContext.make("m", 1)
        ledger.record(ctx, "capture", sim_time=0.0, actor="producer")
        assert math.isnan(ledger.end_to_end("m", 1))


class TestExportRoundTrip:
    def test_jsonl_chrome_reparse_round_trip(self, tmp_path):
        ledger = LifecycleLedger()
        for version in (1, 2):
            walk(ledger, TraceContext.make("m", version),
                 start=float(version))
        path = str(tmp_path / "lineage.jsonl")
        n = ledger.write_jsonl(path)
        assert n == len(ledger)

        back = read_lineage_jsonl(path)
        assert len(back) == len(ledger)
        for version in (1, 2):
            assert back.complete("m", version)
            assert back.trace_ids("m", version) == ledger.trace_ids("m", version)
            assert back.lifecycle("m", version) == ledger.lifecycle("m", version)
        # The re-parsed ledger exports the identical Chrome document.
        assert back.to_chrome_events() == ledger.to_chrome_events()

    def test_chrome_events_shape(self):
        ledger = LifecycleLedger()
        walk(ledger, TraceContext.make("m", 1))
        events = ledger.to_chrome_events()
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X", "i"}
        durations = [e for e in events if e["ph"] == "X"]
        assert len(durations) == len(REQUIRED_STAGES) - 1
        assert all(e["dur"] >= 0 for e in durations)
        non_meta = [e for e in events if e["ph"] != "M"]
        assert [e["ts"] for e in non_meta] == sorted(
            e["ts"] for e in non_meta
        )

    def test_reparse_skips_foreign_lines(self, tmp_path):
        ledger = LifecycleLedger()
        walk(ledger, TraceContext.make("m", 1))
        path = tmp_path / "mixed.jsonl"
        lines = [json.dumps(t.to_dict()) for t in ledger.transitions()]
        lines.insert(1, json.dumps({"type": "span", "name": "other"}))
        path.write_text("\n".join(lines) + "\n")
        back = read_lineage_jsonl(str(path))
        assert len(back) == len(ledger)

    def test_transition_dict_round_trip(self):
        tr = Transition(
            trace_id="t", span_id=3, model_name="m", version=2,
            stage="swap", sim_time=1.5, wall_time=9.0, actor="c0",
            attrs={"location": "pfs"},
        )
        assert Transition.from_dict(tr.to_dict()) == tr


class TestNullLineage:
    def test_records_nothing(self):
        null = NullLineage()
        ctx = TraceContext.make("m", 1)
        assert null.record(ctx, "capture", sim_time=0.0, actor="p") is None
        assert null.record_header(ctx.to_header(), "swap", sim_time=0.0,
                                  actor="c") is None
        assert null.record_once(ctx.to_header(), "first_serve", sim_time=0.0,
                                actor="c") is None
        assert len(null) == 0
        assert not null.enabled

    def test_shared_singleton_disabled(self):
        assert not NULL_LINEAGE.enabled
        assert isinstance(NULL_LINEAGE, LifecycleLedger)


class TestStageOrder:
    def test_required_is_subset_of_lifecycle(self):
        assert set(REQUIRED_STAGES) <= set(LIFECYCLE_STAGES)

    def test_stages_method_orders_pipeline_first(self):
        ledger = LifecycleLedger()
        ctx = TraceContext.make("m", 1)
        ledger.record(ctx, "custom_stage", sim_time=0.1, actor="x")
        ledger.record(ctx, "capture", sim_time=0.0, actor="p")
        assert ledger.stages("m", 1) == ("capture", "custom_stage")
