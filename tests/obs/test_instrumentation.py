"""End-to-end instrumentation tests: span trees and metric emission."""

import numpy as np
import pytest

from repro import CaptureMode, Viper
from repro.apps import get_app
from repro.dnn.layers import Dense
from repro.dnn.models import Sequential
from repro.core.predictor.schedules import epoch_schedule
from repro.core.transfer.strategies import TransferStrategy
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import stage_breakdown
from repro.obs.tracer import SpanTracer
from repro.serving.server import InferenceServer
from repro.workflow.runner import CoupledRunConfig, run_coupled


def _run(tracer, mode=CaptureMode.ASYNC):
    app = get_app("tc1")
    schedule = epoch_schedule(100, 160, 20)  # checkpoints at 120, 140, 160
    return run_coupled(
        CoupledRunConfig(
            app=app,
            schedule=schedule,
            loss_curve=lambda i: 1.0 / (1 + i),
            strategy=TransferStrategy.GPU_TO_GPU,
            mode=mode,
            tracer=tracer,
        )
    )


class TestWorkflowSpans:
    def test_checkpoint_span_tree(self):
        tracer = SpanTracer()
        _run(tracer)
        parents = tracer.spans("checkpoint")
        assert parents, "no checkpoint spans recorded"
        swapped = [s for s in parents if s.attrs.get("outcome") == "swapped"]
        superseded = [s for s in parents
                      if s.attrs.get("outcome") == "superseded"]
        assert len(swapped) >= 1
        assert len(swapped) + len(superseded) == len(parents)
        assert tracer.open_spans() == (), "runner must close every span"

        by_id = {s.span_id: s for s in parents}
        stage_names = ("capture", "transfer", "notify", "load")
        children = [s for name in stage_names for s in tracer.spans(name)]
        assert children, "no stage spans recorded"
        for sp in children:
            parent = by_id[sp.parent_id]
            assert parent.start_sim <= sp.start_sim + 1e-9
            assert sp.end_sim <= parent.end_sim + 1e-9
            assert sp.sim_duration >= 0

    def test_span_durations_match_trace_breakdown(self):
        tracer = SpanTracer()
        result = _run(tracer)
        breakdown = stage_breakdown(result.trace)
        swapped = {
            s.attrs["version"]: s
            for s in tracer.spans("checkpoint")
            if s.attrs.get("outcome") == "swapped"
        }
        assert set(swapped) == set(breakdown.end_to_end)
        for version, e2e in breakdown.end_to_end.items():
            assert swapped[version].sim_duration == pytest.approx(e2e)

    def test_stage_sums_equal_end_to_end(self):
        tracer = SpanTracer()
        result = _run(tracer)
        breakdown = stage_breakdown(result.trace)
        assert breakdown.per_version, "no checkpoint completed"
        for version, stages in breakdown.per_version.items():
            assert sum(stages.values()) == pytest.approx(
                breakdown.end_to_end[version]
            )

    def test_default_null_tracer_changes_nothing(self):
        traced = _run(SpanTracer())
        plain = _run(None)
        assert plain.cil == pytest.approx(traced.cil)
        assert plain.checkpoints == traced.checkpoints
        assert plain.training_overhead == pytest.approx(
            traced.training_overhead
        )


def _tiny_builder():
    return Sequential([Dense(2, name="d")], input_shape=(3,), seed=1)


class TestLiveModeInstrumentation:
    def test_handler_spans_and_metrics(self):
        tracer = SpanTracer()
        metrics = MetricsRegistry()
        with Viper(tracer=tracer, metrics=metrics) as viper:
            state = _tiny_builder().state_dict()
            viper.save_weights("m", state, mode=CaptureMode.SYNC)
            loaded = viper.load_weights("m")
            assert loaded.version == 1

        names = {s.name for s in tracer.spans()}
        assert {"handler.save", "handler.serialize", "handler.load",
                "handler.fetch", "handler.deserialize"} <= names
        save = tracer.spans("handler.save")[0]
        assert save.attrs["model"] == "m"
        assert save.attrs["version"] == 1
        serialize = tracer.spans("handler.serialize")[0]
        assert serialize.parent_id == save.span_id

        metric_names = {i.name for i in metrics.collect()}
        assert "handler_saves_total" in metric_names
        assert "handler_save_stall_sim_seconds" in metric_names
        assert "viper_loads_total" in metric_names
        assert "notifications_published_total" in metric_names
        saves = next(i for i in metrics.collect()
                     if i.name == "handler_saves_total")
        assert saves.value == 1

    def test_consumer_and_buffer_metrics(self):
        metrics = MetricsRegistry()
        tracer = SpanTracer()
        with Viper(tracer=tracer, metrics=metrics) as viper:
            consumer = viper.consumer(model_builder=_tiny_builder)
            consumer.subscribe()
            viper.save_weights(
                "m", _tiny_builder().state_dict(), mode=CaptureMode.SYNC
            )
            # no model name: discovery goes through the subscription
            # drain, which is what feeds the delivery-latency histograms
            assert consumer.refresh() is not None

        assert tracer.spans("consumer.apply_update")
        by_key = {(i.name, i.labels): i for i in metrics.collect()}
        swaps = by_key[("buffer_swaps_total", (("buffer", "model"),))]
        assert swaps.value == 1
        version = by_key[("buffer_live_version", (("buffer", "model"),))]
        assert version.value == 1
        consumed = by_key[
            ("notifications_consumed_total", (("topic", "model-updates"),))
        ]
        assert consumed.value >= 1
        delivery = by_key[
            ("notification_delivery_wall_seconds",
             (("topic", "model-updates"),))
        ]
        assert delivery.count >= 1

    def test_server_metrics_and_stale_counter(self):
        metrics = MetricsRegistry()
        with Viper(metrics=metrics) as viper:
            consumer = viper.consumer(model_builder=_tiny_builder)
            consumer.subscribe()
            server = InferenceServer(consumer, "m", metrics=metrics)
            x = np.ones((1, 3), dtype=np.float32)
            server.handle(x)
            # publish an update but don't apply it: next serve is stale
            viper.save_weights(
                "m", _tiny_builder().state_dict(), mode=CaptureMode.SYNC
            )
            server.poll_updates()  # applies v1, refreshes latest-known
            server.handle(x)
            viper.save_weights(
                "m", _tiny_builder().state_dict(), mode=CaptureMode.SYNC
            )
            # learn about v2 without swapping: refresh() applies it, so
            # instead peek metadata the way poll_updates does, then serve
            server._latest_known = 2
            server.handle(x)

        by_key = {(i.name, i.labels): i for i in metrics.collect()}
        label = (("model", "m"),)
        assert by_key[("server_requests_total", label)].value == 3
        assert by_key[("server_request_wall_seconds", label)].count == 3
        assert by_key[("server_stale_serves_total", label)].value == 1
        assert by_key[("server_updates_applied_total", label)].value == 1
