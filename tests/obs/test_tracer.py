"""Span tracer tests: nesting, clocks, manual form, NullTracer."""

import threading

import pytest

from repro.errors import ViperError
from repro.obs.tracer import NULL_TRACER, NullTracer, SpanTracer


class FakeClock:
    """Deterministic monotonically advancing clock for tests."""

    def __init__(self, start=0.0, step=1.0):
        self.t = start
        self.step = step

    def __call__(self):
        value = self.t
        self.t += self.step
        return value


class TestContextManagerSpans:
    def test_basic_span_records_both_clocks(self):
        sim = FakeClock(100.0, 5.0)
        wall = FakeClock(0.0, 0.25)
        tracer = SpanTracer(sim_now=sim, wall_now=wall)
        with tracer.span("work", track="t", key="a") as sp:
            sp.set(extra=1)
        (done,) = tracer.spans()
        assert done.name == "work"
        assert done.track == "t"
        assert done.sim_duration == pytest.approx(5.0)
        assert done.wall_duration == pytest.approx(0.25)
        assert done.attrs == {"key": "a", "extra": 1}
        assert done.finished

    def test_nesting_parents_via_thread_stack(self):
        tracer = SpanTracer()
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None
        assert outer.parent_id is None
        assert len(tracer.spans()) == 2
        # children finish before parents
        assert [s.name for s in tracer.spans()] == ["inner", "outer"]

    def test_exception_sets_error_attr_and_closes(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("nope")
        (sp,) = tracer.spans()
        assert sp.finished
        assert sp.attrs["error"] == "RuntimeError"
        assert tracer.open_spans() == ()

    def test_decorator_wraps_callable(self):
        tracer = SpanTracer()

        @tracer.trace("doubler", kind="math")
        def double(x):
            return 2 * x

        assert double(21) == 42
        (sp,) = tracer.spans("doubler")
        assert sp.attrs == {"kind": "math"}

    def test_decorator_default_name(self):
        tracer = SpanTracer()

        @tracer.trace()
        def named():
            pass

        named()
        assert "named" in tracer.spans()[0].name

    def test_threads_have_independent_stacks(self):
        tracer = SpanTracer()
        seen = {}

        def worker():
            with tracer.span("child", track="w") as sp:
                seen["parent_id"] = sp.parent_id

        with tracer.span("main-span"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        # the other thread's span must NOT parent under main's span
        assert seen["parent_id"] is None


class TestManualSpans:
    def test_open_close_with_explicit_sim_times(self):
        tracer = SpanTracer()
        sp = tracer.open("ckpt", track="pipeline", start_sim=10.0, version=3)
        assert tracer.open_spans() == (sp,)
        closed = tracer.close(sp, end_sim=14.5, outcome="swapped")
        assert closed.sim_duration == pytest.approx(4.5)
        assert closed.attrs == {"version": 3, "outcome": "swapped"}
        assert tracer.open_spans() == ()

    def test_open_defaults_track_to_thread_name(self):
        tracer = SpanTracer()
        sp = tracer.open("x")
        assert sp.track == threading.current_thread().name
        tracer.close(sp)

    def test_explicit_parenting(self):
        tracer = SpanTracer()
        parent = tracer.open("parent", start_sim=0.0)
        child = tracer.record(
            "child", start_sim=1.0, end_sim=2.0, parent=parent
        )
        assert child.parent_id == parent.span_id
        by_id = tracer.record("child2", start_sim=2.0, end_sim=3.0,
                              parent=parent.span_id)
        assert by_id.parent_id == parent.span_id
        tracer.close(parent, end_sim=3.0)

    def test_close_unknown_span_raises(self):
        tracer = SpanTracer()
        with pytest.raises(ViperError):
            tracer.close(999)

    def test_double_close_raises(self):
        tracer = SpanTracer()
        sp = tracer.open("once")
        tracer.close(sp)
        with pytest.raises(ViperError):
            tracer.close(sp)

    def test_record_is_immediately_finished(self):
        tracer = SpanTracer()
        sp = tracer.record("done", start_sim=5.0, end_sim=7.0, track="eng")
        assert sp.finished
        assert sp.sim_duration == pytest.approx(2.0)
        assert sp.wall_duration == pytest.approx(0.0)
        assert tracer.spans() == (sp,)

    def test_clear_and_len(self):
        tracer = SpanTracer()
        tracer.record("a", start_sim=0.0, end_sim=1.0)
        tracer.open("b")
        assert len(tracer) == 1
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.open_spans() == ()

    def test_spans_filter_by_name(self):
        tracer = SpanTracer()
        tracer.record("a", start_sim=0.0, end_sim=1.0)
        tracer.record("b", start_sim=1.0, end_sim=2.0)
        tracer.record("a", start_sim=2.0, end_sim=3.0)
        assert len(tracer.spans("a")) == 2
        assert len(tracer.spans("b")) == 1


class TestNullTracer:
    def test_is_disabled_and_records_nothing(self):
        assert NULL_TRACER.enabled is False
        assert SpanTracer.enabled is True
        with NULL_TRACER.span("anything", key="v") as sp:
            sp.set(more="attrs")
        sp2 = NULL_TRACER.open("x", start_sim=1.0)
        NULL_TRACER.close(sp2, end_sim=2.0)
        NULL_TRACER.record("y", start_sim=0.0, end_sim=1.0)
        assert NULL_TRACER.spans() == ()
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.current() is None

    def test_null_span_is_shared_and_inert(self):
        a = NULL_TRACER.open("a")
        b = NULL_TRACER.open("b")
        assert a is b
        assert a.set(x=1) is a
        assert a.attrs == {}

    def test_decorator_returns_function_unwrapped(self):
        def fn():
            return 7

        assert NullTracer().trace("t")(fn) is fn

    def test_close_never_raises(self):
        NULL_TRACER.close(12345)


class TestThreadSafety:
    def test_concurrent_open_close(self):
        tracer = SpanTracer()
        n = 200

        def worker(tag):
            for i in range(n):
                sp = tracer.open(f"{tag}-{i}", track=tag, start_sim=float(i))
                tracer.close(sp, end_sim=float(i) + 1.0)

        threads = [
            threading.Thread(target=worker, args=(f"t{k}",)) for k in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer) == 4 * n
        assert tracer.open_spans() == ()
        ids = [s.span_id for s in tracer.spans()]
        assert len(set(ids)) == len(ids)


class TestStackHygiene:
    def test_thousand_span_cycles_leave_no_residue(self):
        """Per-thread stacks and the owning-stack registry must not grow
        across span open/close cycles — long-lived workers (flusher,
        broker, serving threads) would otherwise leak one entry per
        checkpoint forever."""
        tracer = SpanTracer()
        errors = []

        def worker(tag):
            try:
                for i in range(1000):
                    with tracer.span(f"{tag}", track=tag, i=i):
                        with tracer.span(f"{tag}-inner", track=tag):
                            pass
                    if tracer.stack_depth() != 0:
                        errors.append(
                            f"{tag}: depth {tracer.stack_depth()} at {i}"
                        )
                        return
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(f"{tag}: {exc!r}")

        threads = [
            threading.Thread(target=worker, args=(f"t{k}",)) for k in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(tracer) == 4 * 2000
        assert tracer.open_spans() == ()
        # The owning-stack registry is fully drained: nothing pins the
        # per-thread lists after their spans closed.
        assert tracer._stack_of == {}

    def test_cross_thread_close_evicts_from_owner_stack(self):
        tracer = SpanTracer()
        opened = {}
        ready = threading.Event()
        release = threading.Event()

        def owner():
            # Enter the span but never exit: a supervisor on another
            # thread force-closes it (as the flusher teardown path does).
            opened["span"] = tracer.span("long-lived", track="owner").__enter__()
            ready.set()
            release.wait(5.0)

        t = threading.Thread(target=owner)
        t.start()
        assert ready.wait(5.0)
        tracer.close(opened["span"], end_sim=1.0)  # from the main thread
        release.set()
        t.join()
        assert tracer._stack_of == {}
        assert tracer.open_spans() == ()
