"""Metrics registry tests: instruments, labels, percentiles, Null."""

import math
import threading

import pytest

from repro.errors import ViperError
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)


class TestCounter:
    def test_inc_accumulates(self):
        c = Counter("hits")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_negative_inc_rejected(self):
        with pytest.raises(ViperError):
            Counter("hits").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert g.value == pytest.approx(4.0)


class TestHistogram:
    def test_basic_stats(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 10.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(15.0)
        assert h.mean == pytest.approx(3.75)
        assert h.min == pytest.approx(0.5)
        assert h.max == pytest.approx(10.0)

    def test_empty_reads_are_nan(self):
        h = Histogram("lat", buckets=(1.0,))
        assert math.isnan(h.mean)
        assert math.isnan(h.min)
        assert math.isnan(h.max)
        assert math.isnan(h.quantile(0.5))

    def test_cumulative_bucket_counts_end_with_inf(self):
        h = Histogram("lat", buckets=(1.0, 2.0))
        for v in (0.5, 0.7, 1.5, 99.0):
            h.observe(v)
        counts = h.bucket_counts()
        assert counts == ((1.0, 2), (2.0, 3), (math.inf, 4))

    def test_boundary_value_lands_in_its_bucket(self):
        # Prometheus buckets are upper-inclusive: observe(le) counts in le.
        h = Histogram("lat", buckets=(1.0, 2.0))
        h.observe(1.0)
        assert h.bucket_counts()[0] == (1.0, 1)

    def test_quantile_interpolates_within_bucket(self):
        h = Histogram("lat", buckets=(0.0, 10.0))
        for v in range(1, 11):  # 1..10, uniform in the (0, 10] bucket
            h.observe(float(v))
        # exact p50 of the uniform sample is 5.5; interpolation gives 5.0
        assert h.quantile(0.5) == pytest.approx(5.0, abs=1.0)
        assert h.quantile(1.0) == pytest.approx(10.0)
        assert h.quantile(0.0) == pytest.approx(1.0)  # clamped to min

    def test_quantile_clamped_to_observed_range(self):
        h = Histogram("lat", buckets=(100.0,))
        h.observe(3.0)
        # one sample in the (0, 100] bucket; naive interpolation would
        # report somewhere inside the bucket, clamping pins it to 3.0
        assert h.quantile(0.99) == pytest.approx(3.0)
        assert h.quantile(0.01) == pytest.approx(3.0)

    def test_quantile_out_of_range_rejected(self):
        h = Histogram("lat", buckets=(1.0,))
        with pytest.raises(ViperError):
            h.quantile(1.5)

    def test_bad_buckets_rejected(self):
        with pytest.raises(ViperError):
            Histogram("lat", buckets=())
        with pytest.raises(ViperError):
            Histogram("lat", buckets=(1.0, 1.0))

    def test_default_buckets_cover_micro_to_kilo_seconds(self):
        assert DEFAULT_BUCKETS[0] == pytest.approx(1e-6)
        assert DEFAULT_BUCKETS[-1] == pytest.approx(5e3)
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_concurrent_observes(self):
        h = Histogram("lat")
        n = 1000

        def worker():
            for i in range(n):
                h.observe(i * 1e-3)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 4 * n
        assert h.bucket_counts()[-1][1] == 4 * n


class TestRegistry:
    def test_get_or_create_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("reqs", model="tc1")
        b = reg.counter("reqs", model="tc1")
        assert a is b
        a.inc()
        assert b.value == 1

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("reqs", a="1", b="2")
        b = reg.counter("reqs", b="2", a="1")
        assert a is b
        assert a.labels == (("a", "1"), ("b", "2"))

    def test_different_labels_different_instruments(self):
        reg = MetricsRegistry()
        assert reg.counter("reqs", m="x") is not reg.counter("reqs", m="y")
        assert len(reg) == 2

    def test_label_values_coerced_to_str(self):
        reg = MetricsRegistry()
        assert reg.counter("reqs", version=3) is reg.counter("reqs", version="3")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(ViperError):
            reg.gauge("thing")

    def test_histogram_custom_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 2.0), stage="load")
        assert h.bounds == (1.0, 2.0)

    def test_collect_sorted_and_iterable(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a", z="1")
        reg.gauge("a", a="1")
        names = [(i.name, i.labels) for i in reg]
        assert names == sorted(names)
        assert len(reg.collect()) == 3


class TestNullRegistry:
    def test_absorbs_everything(self):
        reg = NullMetricsRegistry()
        assert reg.enabled is False
        assert MetricsRegistry.enabled is True
        reg.counter("x", a="b").inc(5)
        reg.gauge("y").set(3)
        reg.histogram("z").observe(1.0)
        assert reg.collect() == ()

    def test_shared_singleton_instrument(self):
        assert NULL_METRICS.counter("a") is NULL_METRICS.histogram("b")
        inst = NULL_METRICS.counter("a")
        assert inst.value == 0.0
        assert inst.count == 0
        inst.inc()
        inst.dec()
        inst.set(9)
        inst.observe(1.0)
        assert inst.value == 0.0


try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the image
    HAVE_HYPOTHESIS = False


def reference_quantile(samples, q):
    """Inverse empirical CDF over the sorted raw samples.

    The same rank convention the bucketed estimator uses (rank =
    ``q * n``, take the ``ceil(rank)``-th smallest), so the bucketed
    estimate must land in the same bucket as this reference."""
    ordered = sorted(samples)
    if q == 0.0:
        return ordered[0]
    idx = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[idx]


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestQuantileProperties:
    """The bucketed estimate vs a sorted-sample reference.

    The histogram only keeps per-bucket counts, so exact agreement is
    impossible — but the estimate must stay inside the observed range,
    be monotone in q, hit the edges exactly, and never stray from the
    reference by more than the width of the bucket it landed in."""

    samples = st.lists(
        st.floats(min_value=1e-6, max_value=1e4,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=120,
    )
    qs = st.floats(min_value=0.0, max_value=1.0,
                   allow_nan=False, allow_infinity=False)

    @settings(max_examples=150, deadline=None)
    @given(samples=samples, q=qs)
    def test_estimate_within_observed_range(self, samples, q):
        h = Histogram("x")
        for s in samples:
            h.observe(s)
        est = h.quantile(q)
        assert min(samples) <= est <= max(samples)

    @settings(max_examples=150, deadline=None)
    @given(samples=samples)
    def test_edges_exact_and_monotone_in_q(self, samples):
        h = Histogram("x")
        for s in samples:
            h.observe(s)
        assert h.quantile(0.0) == min(samples)
        assert h.quantile(1.0) == max(samples)
        grid = [h.quantile(q / 10) for q in range(11)]
        assert all(b >= a - 1e-12 for a, b in zip(grid, grid[1:]))

    @settings(max_examples=150, deadline=None)
    @given(samples=samples, q=qs)
    def test_within_one_bucket_of_reference(self, samples, q):
        h = Histogram("x")
        for s in samples:
            h.observe(s)
        est = h.quantile(q)
        ref = reference_quantile(samples, q)
        # The bucket the reference landed in bounds the possible error.
        bounds = [0.0] + list(h.bounds) + [max(max(samples), h.bounds[-1])]
        width = max(
            hi - lo for lo, hi in zip(bounds, bounds[1:])
            if lo <= ref <= hi
        )
        assert abs(est - ref) <= width + 1e-9

    @settings(max_examples=50, deadline=None)
    @given(sample=st.floats(min_value=1e-6, max_value=1e4,
                            allow_nan=False, allow_infinity=False),
           q=qs)
    def test_single_observation_reports_itself(self, sample, q):
        h = Histogram("x")
        h.observe(sample)
        assert h.quantile(q) == sample
