"""Freshness/SLO tracker unit tests: interval math, burns, fleet report."""

import math

import pytest

from repro.obs.freshness import (
    DEFAULT_QUANTILES,
    NULL_FRESHNESS,
    ConsumerFreshness,
    FreshnessTracker,
    NullFreshness,
    SLOTarget,
    format_fleet_table,
)
from repro.obs.metrics import MetricsRegistry


class TestStaleIntervals:
    def test_publish_opens_swap_closes(self):
        fresh = FreshnessTracker()
        fresh.record_swap("c0", "m", 1, 0.0)   # v1 live from the origin
        fresh.record_publish("m", 2, 10.0)     # c0 now behind
        fresh.record_swap("c0", "m", 2, 13.0)  # caught up
        assert fresh.stale_seconds("c0", "m") == pytest.approx(3.0)
        assert fresh.version_lag("c0", "m") == 0

    def test_open_interval_counts_up_to_now(self):
        fresh = FreshnessTracker()
        fresh.record_swap("c0", "m", 1, 0.0)
        fresh.record_publish("m", 2, 5.0)
        assert fresh.stale_seconds("c0", "m", now=9.0) == pytest.approx(4.0)
        assert fresh.stale_seconds("c0", "m") == 0.0  # closed intervals only

    def test_swap_to_superseded_version_stays_stale(self):
        fresh = FreshnessTracker()
        fresh.record_publish("m", 1, 0.0)
        fresh.record_publish("m", 2, 1.0)
        fresh.record_swap("c0", "m", 1, 4.0)   # still one behind
        assert fresh.version_lag("c0", "m") == 1
        assert fresh.stale_seconds("c0", "m", now=6.0) == pytest.approx(2.0)

    def test_update_latency_is_publish_to_swap(self):
        fresh = FreshnessTracker()
        fresh.record_publish("m", 1, 2.0)
        assert fresh.record_swap("c0", "m", 1, 3.5) == pytest.approx(1.5)

    def test_unseen_publish_latency_zero(self):
        fresh = FreshnessTracker()
        assert fresh.record_swap("c0", "m", 1, 3.5) == 0.0

    def test_stale_predicate_and_serve_counting(self):
        fresh = FreshnessTracker()
        fresh.record_publish("m", 2, 0.0)
        assert fresh.is_stale("c0", "m", 1)
        assert not fresh.is_stale("c0", "m", 2)
        assert fresh.record_serve("c0", "m", 1, 0.1) is True
        assert fresh.record_serve("c0", "m", 2, 0.2) is False
        row = fresh.fleet("m")[0]
        assert row.serves == 2 and row.stale_serves == 1


class TestSLOBurns:
    def test_latency_burn(self):
        fresh = FreshnessTracker(slo=SLOTarget(update_latency=1.0))
        fresh.record_publish("m", 1, 0.0)
        fresh.record_swap("c0", "m", 1, 0.5)   # within budget
        fresh.record_publish("m", 2, 1.0)
        fresh.record_swap("c0", "m", 2, 3.0)   # 2.0s > 1.0s budget
        assert fresh.fleet("m")[0].slo_burns == 1

    def test_stale_interval_burn(self):
        fresh = FreshnessTracker(slo=SLOTarget(max_stale_seconds=1.0))
        fresh.record_swap("c0", "m", 1, 0.0)
        fresh.record_publish("m", 2, 0.0)
        fresh.record_swap("c0", "m", 2, 5.0)   # 5s stale interval
        assert fresh.fleet("m")[0].slo_burns == 1

    def test_version_lag_burn(self):
        fresh = FreshnessTracker(slo=SLOTarget(max_version_lag=1))
        for v in (1, 2, 3):
            fresh.record_publish("m", v, float(v))
        fresh.record_swap("c0", "m", 1, 4.0)   # lag 2 > 1
        assert fresh.fleet("m")[0].slo_burns == 1

    def test_burns_counted_in_metrics(self):
        metrics = MetricsRegistry()
        fresh = FreshnessTracker(
            metrics=metrics, slo=SLOTarget(update_latency=0.1)
        )
        fresh.record_publish("m", 1, 0.0)
        fresh.record_swap("c0", "m", 1, 5.0)
        counter = metrics.counter(
            "viper_slo_burn_total", slo="update_latency",
            consumer="c0", model="m",
        )
        assert counter.value == 1

    def test_no_slo_no_burns(self):
        fresh = FreshnessTracker()
        fresh.record_publish("m", 1, 0.0)
        fresh.record_swap("c0", "m", 1, 100.0)
        assert fresh.fleet("m")[0].slo_burns == 0


class TestCountersAndMetrics:
    def test_rejections_and_fallbacks(self):
        metrics = MetricsRegistry()
        fresh = FreshnessTracker(metrics=metrics)
        fresh.record_stale_rejection("c0", "m")
        fresh.record_stale_fallback("c0", "m")
        fresh.record_stale_fallback("c1", "m")
        assert fresh.stale_rejections == 1
        assert fresh.stale_fallbacks == 2
        assert metrics.counter(
            "viper_stale_rejections_total", consumer="c0", model="m"
        ).value == 1
        assert metrics.counter(
            "viper_stale_fallbacks_by_consumer_total", consumer="c1", model="m"
        ).value == 1

    def test_latest_version_gauge(self):
        metrics = MetricsRegistry()
        fresh = FreshnessTracker(metrics=metrics)
        fresh.record_publish("m", 3, 0.0)
        fresh.record_publish("m", 2, 1.0)  # late, lower: gauge holds
        assert fresh.latest_version("m") == 3
        assert metrics.gauge(
            "viper_latest_published_version", model="m"
        ).value == 3


class TestFleetReport:
    def test_rows_sorted_by_consumer(self):
        fresh = FreshnessTracker()
        for name in ("c2", "c0", "c1"):
            fresh.record_swap(name, "m", 1, 0.0)
        assert [r.consumer for r in fresh.fleet("m")] == ["c0", "c1", "c2"]

    def test_quantiles_in_rows(self):
        fresh = FreshnessTracker()
        for v, latency in ((1, 1.0), (2, 2.0), (3, 3.0)):
            fresh.record_publish("m", v, 0.0)
            fresh.record_swap("c0", "m", v, latency)
        row = fresh.fleet("m")[0]
        qs = dict(row.latency_quantiles)
        assert set(qs) == set(DEFAULT_QUANTILES)
        assert 1.0 <= qs[0.5] <= 3.0
        assert qs[0.999] == pytest.approx(3.0)
        assert row.quantile(0.5) == qs[0.5]
        assert math.isnan(row.quantile(0.123))

    def test_format_fleet_table(self):
        fresh = FreshnessTracker()
        fresh.record_publish("m", 1, 0.0)
        fresh.record_swap("c0", "m", 1, 0.5)
        text = format_fleet_table(fresh.fleet("m"), fresh.latest_version("m"))
        assert "consumer" in text and "p99.9" in text
        assert "c0" in text
        assert "latest published version: v1" in text

    def test_format_empty_fleet(self):
        assert "no consumers" in format_fleet_table(())

    def test_update_latency_quantiles_unknown_consumer_nan(self):
        fresh = FreshnessTracker()
        for _q, value in fresh.update_latency_quantiles("ghost", "m"):
            assert math.isnan(value)


class TestNullFreshness:
    def test_everything_noop(self):
        null = NullFreshness()
        null.record_publish("m", 1, 0.0)
        assert null.record_swap("c0", "m", 1, 1.0) == 0.0
        assert null.record_serve("c0", "m", 0, 1.0) is False
        null.record_stale_rejection("c0", "m")
        null.record_stale_fallback("c0", "m")
        assert null.fleet("m") == ()
        assert not null.enabled

    def test_shared_singleton(self):
        assert not NULL_FRESHNESS.enabled
        assert isinstance(NULL_FRESHNESS, FreshnessTracker)
        assert isinstance(NULL_FRESHNESS.fleet("m"), tuple)


class TestRowDataclass:
    def test_consumer_freshness_is_frozen(self):
        row = ConsumerFreshness(
            consumer="c0", model_name="m", current_version=1, version_lag=0,
            stale_seconds=0.0, updates=1, serves=0, stale_serves=0,
            slo_burns=0, latency_quantiles=((0.5, 0.1),),
        )
        with pytest.raises(AttributeError):
            row.updates = 2  # type: ignore[misc]
