"""Layer forward/backward correctness, including numerical grad checks."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.dnn.layers import (
    Conv1D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAveragePooling1D,
    MaxPool1D,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Tanh,
    UpSampling2D,
)
from tests.dnn.gradcheck import check_layer_input_grad, check_layer_param_grads

RNG = np.random.default_rng(42)


def build(layer, shape):
    layer.build(shape, np.random.default_rng(7))
    return layer


class TestDense:
    def test_forward_matches_matmul(self):
        layer = build(Dense(3), (4,))
        x = RNG.standard_normal((2, 4)).astype(np.float64)
        out = layer.forward(x)
        np.testing.assert_allclose(out, x @ layer.params["W"] + layer.params["b"])

    def test_output_shape(self):
        assert Dense(7).output_shape((4,)) == (7,)

    def test_input_grad(self):
        layer = build(Dense(3), (4,))
        check_layer_input_grad(layer, RNG.standard_normal((2, 4)))

    def test_param_grads(self):
        layer = build(Dense(3), (4,))
        check_layer_param_grads(layer, RNG.standard_normal((2, 4)))

    def test_invalid_units(self):
        with pytest.raises(ConfigurationError):
            Dense(0)

    def test_num_params(self):
        layer = build(Dense(3), (4,))
        assert layer.num_params == 4 * 3 + 3


class TestConv1D:
    def test_valid_output_shape(self):
        assert Conv1D(8, 3, padding="valid").output_shape((10, 2)) == (8, 8)

    def test_same_output_shape(self):
        assert Conv1D(8, 3, padding="same").output_shape((10, 2)) == (10, 8)

    def test_forward_matches_manual(self):
        layer = build(Conv1D(1, 2, padding="valid"), (4, 1))
        layer.params["W"][...] = np.array([[[1.0]], [[2.0]]])  # (K, C, O)
        layer.params["b"][...] = 0.5
        x = np.array([[[1.0], [2.0], [3.0], [4.0]]])
        out = layer.forward(x)
        # out[i] = x[i]*1 + x[i+1]*2 + 0.5
        np.testing.assert_allclose(out[0, :, 0], [5.5, 8.5, 11.5])

    @pytest.mark.parametrize("padding", ["valid", "same"])
    def test_input_grad(self, padding):
        layer = build(Conv1D(3, 3, padding=padding), (6, 2))
        check_layer_input_grad(layer, RNG.standard_normal((2, 6, 2)))

    @pytest.mark.parametrize("padding", ["valid", "same"])
    def test_param_grads(self, padding):
        layer = build(Conv1D(3, 3, padding=padding), (6, 2))
        check_layer_param_grads(layer, RNG.standard_normal((2, 6, 2)))

    def test_even_kernel_same_rejected(self):
        with pytest.raises(ConfigurationError):
            Conv1D(4, 4, padding="same")

    def test_unknown_padding_rejected(self):
        with pytest.raises(ConfigurationError):
            Conv1D(4, 3, padding="reflect")


class TestConv2D:
    def test_same_output_shape(self):
        assert Conv2D(5, 3, padding="same").output_shape((8, 8, 2)) == (8, 8, 5)

    def test_valid_output_shape(self):
        assert Conv2D(5, 3, padding="valid").output_shape((8, 8, 2)) == (6, 6, 5)

    @pytest.mark.parametrize("padding", ["valid", "same"])
    def test_input_grad(self, padding):
        layer = build(Conv2D(2, 3, padding=padding), (5, 5, 2))
        check_layer_input_grad(layer, RNG.standard_normal((2, 5, 5, 2)))

    @pytest.mark.parametrize("padding", ["valid", "same"])
    def test_param_grads(self, padding):
        layer = build(Conv2D(2, 3, padding=padding), (5, 5, 2))
        check_layer_param_grads(layer, RNG.standard_normal((2, 5, 5, 2)))

    def test_identity_kernel(self):
        layer = build(Conv2D(1, 1, padding="same"), (3, 3, 1))
        layer.params["W"][...] = 1.0
        layer.params["b"][...] = 0.0
        x = RNG.standard_normal((1, 3, 3, 1))
        np.testing.assert_allclose(layer.forward(x), x)


class TestPooling:
    def test_maxpool1d_forward(self):
        layer = MaxPool1D(2)
        x = np.array([[[1.0], [5.0], [2.0], [3.0], [9.0], [0.0]]])
        np.testing.assert_allclose(layer.forward(x)[0, :, 0], [5.0, 3.0, 9.0])

    def test_maxpool1d_truncates_tail(self):
        layer = MaxPool1D(2)
        x = RNG.standard_normal((1, 5, 2))
        assert layer.forward(x).shape == (1, 2, 2)

    def test_maxpool1d_backward_routes_to_argmax(self):
        layer = MaxPool1D(2)
        x = np.array([[[1.0], [5.0], [2.0], [3.0]]])
        layer.forward(x)
        dx = layer.backward(np.array([[[10.0], [20.0]]]))
        np.testing.assert_allclose(dx[0, :, 0], [0.0, 10.0, 0.0, 20.0])

    def test_maxpool1d_input_grad(self):
        # Use distinct values so the argmax is stable under perturbation.
        x = RNG.permutation(np.arange(24.0)).reshape(1, 12, 2)
        check_layer_input_grad(MaxPool1D(2), x)

    def test_maxpool2d_forward(self):
        layer = MaxPool2D(2)
        x = np.arange(16.0).reshape(1, 4, 4, 1)
        out = layer.forward(x)
        np.testing.assert_allclose(out[0, :, :, 0], [[5, 7], [13, 15]])

    def test_maxpool2d_input_grad(self):
        x = RNG.permutation(np.arange(32.0)).reshape(1, 4, 4, 2)
        check_layer_input_grad(MaxPool2D(2), x)

    def test_maxpool1d_ragged_tail_grad_not_dropped(self):
        # Length 5 with pool 2 truncates the tail; the scatter must still
        # land in the original dx (a reshape copy would lose it).
        layer = MaxPool1D(2)
        x = np.array([[[1.0], [5.0], [2.0], [3.0], [9.0]]])
        layer.forward(x)
        dx = layer.backward(np.array([[[10.0], [20.0]]]))
        np.testing.assert_allclose(dx[0, :, 0], [0.0, 10.0, 0.0, 20.0, 0.0])

    def test_maxpool2d_ragged_tail_grad_not_dropped(self):
        layer = MaxPool2D(2)
        x = np.arange(25.0).reshape(1, 5, 5, 1)
        out = layer.forward(x)
        assert out.shape == (1, 2, 2, 1)
        dx = layer.backward(np.ones((1, 2, 2, 1)))
        assert dx.sum() == pytest.approx(4.0)
        assert dx[0, 1, 1, 0] == 1.0 and dx[0, 1, 3, 0] == 1.0

    def test_upsampling_forward(self):
        layer = UpSampling2D(2)
        x = np.array([[[[1.0], [2.0]], [[3.0], [4.0]]]])
        out = layer.forward(x)
        assert out.shape == (1, 4, 4, 1)
        np.testing.assert_allclose(out[0, :2, :2, 0], [[1, 1], [1, 1]])

    def test_upsampling_backward_sums(self):
        layer = UpSampling2D(2)
        x = RNG.standard_normal((1, 2, 2, 1))
        layer.forward(x)
        dout = np.ones((1, 4, 4, 1))
        np.testing.assert_allclose(layer.backward(dout), np.full((1, 2, 2, 1), 4.0))

    def test_upsampling_input_grad(self):
        check_layer_input_grad(UpSampling2D(2), RNG.standard_normal((1, 3, 3, 2)))

    def test_gap_forward(self):
        layer = GlobalAveragePooling1D()
        x = np.array([[[1.0, 10.0], [3.0, 20.0]]])
        np.testing.assert_allclose(layer.forward(x), [[2.0, 15.0]])

    def test_gap_input_grad(self):
        check_layer_input_grad(
            GlobalAveragePooling1D(), RNG.standard_normal((2, 4, 3))
        )


class TestShapeAndStateless:
    def test_flatten_roundtrip(self):
        layer = Flatten()
        x = RNG.standard_normal((2, 3, 4))
        out = layer.forward(x)
        assert out.shape == (2, 12)
        np.testing.assert_allclose(layer.backward(out), x)

    def test_relu(self):
        layer = ReLU()
        x = np.array([[-1.0, 0.5]])
        np.testing.assert_allclose(layer.forward(x), [[0.0, 0.5]])
        np.testing.assert_allclose(layer.backward(np.ones_like(x)), [[0.0, 1.0]])

    def test_sigmoid_range_and_grad(self):
        layer = Sigmoid()
        x = RNG.standard_normal((3, 4)) * 5
        out = layer.forward(x)
        assert np.all(out > 0) and np.all(out < 1)
        check_layer_input_grad(Sigmoid(), RNG.standard_normal((2, 3)))

    def test_sigmoid_extreme_values_stable(self):
        layer = Sigmoid()
        out = layer.forward(np.array([[-1000.0, 1000.0]]))
        assert np.all(np.isfinite(out))

    def test_tanh_input_grad(self):
        check_layer_input_grad(Tanh(), RNG.standard_normal((2, 3)))

    def test_dropout_identity_in_eval(self):
        layer = Dropout(0.5)
        x = RNG.standard_normal((4, 4))
        np.testing.assert_allclose(layer.forward(x, training=False), x)

    def test_dropout_scales_in_train(self):
        layer = Dropout(0.5, seed=1)
        x = np.ones((1, 10_000))
        out = layer.forward(x, training=True)
        kept = out[out > 0]
        np.testing.assert_allclose(kept, 2.0)
        assert 0.4 < (kept.size / x.size) < 0.6

    def test_dropout_backward_uses_same_mask(self):
        layer = Dropout(0.5, seed=2)
        x = np.ones((1, 100))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_allclose(grad, out)

    def test_dropout_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            Dropout(1.0)

    def test_unique_default_names(self):
        assert ReLU().name != ReLU().name
