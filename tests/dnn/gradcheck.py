"""Numerical gradient checking helpers for layer tests."""

from __future__ import annotations

import numpy as np


def numerical_grad(f, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar f w.r.t. array x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = f()
        flat[i] = orig - eps
        lo = f()
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check_layer_input_grad(layer, x: np.ndarray, rtol=1e-2, atol=1e-3):
    """Verify layer.backward's input gradient against finite differences.

    Uses the scalar objective sum(forward(x) * W_rand) so every output
    element contributes with a distinct weight.
    """
    rng = np.random.default_rng(0)
    out = layer.forward(x.copy(), training=False)
    weights = rng.standard_normal(out.shape)

    def objective():
        return float((layer.forward(x, training=False) * weights).sum())

    # analytic
    layer.forward(x, training=False)
    analytic = layer.backward(weights.astype(np.float64))
    numeric = numerical_grad(objective, x)
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)


def check_layer_param_grads(layer, x: np.ndarray, rtol=1e-2, atol=1e-3):
    """Verify layer.backward's parameter gradients against finite diffs."""
    rng = np.random.default_rng(1)
    out = layer.forward(x, training=False)
    weights = rng.standard_normal(out.shape)

    layer.forward(x, training=False)
    layer.backward(weights.astype(np.float64))
    for pname, param in layer.params.items():
        analytic = layer.grads[pname]

        def objective():
            return float((layer.forward(x, training=False) * weights).sum())

        numeric = numerical_grad(objective, param)
        np.testing.assert_allclose(
            analytic, numeric, rtol=rtol, atol=atol,
            err_msg=f"param {pname}",
        )
