"""Training loop and callback protocol tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.dnn.layers import Dense
from repro.dnn.losses import MSELoss
from repro.dnn.models import Sequential
from repro.dnn.optimizers import SGD
from repro.dnn.training import Callback


def make_model():
    model = Sequential([Dense(1, name="d")], input_shape=(2,), seed=4)
    model.compile(SGD(lr=0.05), MSELoss())
    return model


def make_data(n=40):
    rng = np.random.default_rng(0)
    x = rng.standard_normal((n, 2)).astype(np.float32)
    y = (x @ np.array([[1.0], [-2.0]])).astype(np.float32)
    return x, y


class Recorder(Callback):
    def __init__(self):
        super().__init__()
        self.calls = []

    def on_train_begin(self, logs):
        self.calls.append(("train_begin", dict(logs)))

    def on_epoch_begin(self, epoch, logs):
        self.calls.append(("epoch_begin", epoch))

    def on_batch_end(self, iteration, logs):
        self.calls.append(("batch_end", iteration, logs["loss"]))

    def on_epoch_end(self, epoch, logs):
        self.calls.append(("epoch_end", epoch, logs["loss"]))

    def on_train_end(self, logs):
        self.calls.append(("train_end", logs["iterations"]))


class TestFitLoop:
    def test_history_lengths(self):
        model = make_model()
        x, y = make_data(40)
        history = model.fit(x, y, epochs=3, batch_size=10)
        assert len(history.epoch_loss) == 3
        assert len(history.iteration_loss) == 12
        assert history.epochs_run == 3

    def test_ceil_division_of_batches(self):
        model = make_model()
        x, y = make_data(25)
        history = model.fit(x, y, epochs=1, batch_size=10)
        assert len(history.iteration_loss) == 3  # 10+10+5

    def test_loss_decreases(self):
        model = make_model()
        x, y = make_data()
        history = model.fit(x, y, epochs=20, batch_size=10, seed=1)
        assert history.epoch_loss[-1] < history.epoch_loss[0] / 5

    def test_callback_sequence(self):
        model = make_model()
        x, y = make_data(20)
        rec = Recorder()
        model.fit(x, y, epochs=2, batch_size=10, callbacks=[rec])
        kinds = [c[0] for c in rec.calls]
        assert kinds == [
            "train_begin",
            "epoch_begin", "batch_end", "batch_end", "epoch_end",
            "epoch_begin", "batch_end", "batch_end", "epoch_end",
            "train_end",
        ]

    def test_iterations_are_global(self):
        model = make_model()
        x, y = make_data(20)
        rec = Recorder()
        model.fit(x, y, epochs=3, batch_size=10, callbacks=[rec])
        iteration_ids = [c[1] for c in rec.calls if c[0] == "batch_end"]
        assert iteration_ids == list(range(1, 7))

    def test_callback_model_is_set(self):
        model = make_model()
        x, y = make_data(20)

        class Check(Callback):
            seen = None

            def on_train_begin(self, logs):
                Check.seen = self.model

        model.fit(x, y, epochs=1, batch_size=10, callbacks=[Check()])
        assert Check.seen is model

    def test_stop_training_mid_epoch(self):
        model = make_model()
        x, y = make_data(40)

        class StopAt3(Callback):
            def on_batch_end(self, iteration, logs):
                if iteration == 3:
                    self.model.stop_training = True

        history = model.fit(x, y, epochs=5, batch_size=10, callbacks=[StopAt3()])
        assert len(history.iteration_loss) == 3

    def test_shuffle_determinism(self):
        x, y = make_data(40)
        h1 = make_model().fit(x, y, epochs=2, batch_size=10, seed=7)
        h2 = make_model().fit(x, y, epochs=2, batch_size=10, seed=7)
        np.testing.assert_allclose(h1.iteration_loss, h2.iteration_loss)

    def test_no_shuffle_keeps_order(self):
        x, y = make_data(40)
        h1 = make_model().fit(x, y, epochs=1, batch_size=10, shuffle=False)
        h2 = make_model().fit(x, y, epochs=1, batch_size=10, shuffle=False, seed=99)
        np.testing.assert_allclose(h1.iteration_loss, h2.iteration_loss)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epochs": 0},
            {"epochs": -1},
            {"batch_size": 0},
        ],
    )
    def test_invalid_loop_params(self, kwargs):
        model = make_model()
        x, y = make_data(20)
        base = {"epochs": 1, "batch_size": 10}
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            model.fit(x, y, **base)

    def test_length_mismatch_rejected(self):
        model = make_model()
        x, y = make_data(20)
        with pytest.raises(ConfigurationError):
            model.fit(x, y[:-1], epochs=1, batch_size=10)

    def test_empty_dataset_rejected(self):
        model = make_model()
        with pytest.raises(ConfigurationError):
            model.fit(np.zeros((0, 2)), np.zeros((0, 1)), epochs=1, batch_size=10)


class TestAccuracyTracking:
    def test_classification_tracks_accuracy(self):
        from repro.dnn.layers import Dense
        from repro.dnn.losses import CrossEntropyLoss
        from repro.dnn.models import Sequential
        from repro.dnn.optimizers import SGD

        model = Sequential([Dense(2, name="d")], input_shape=(2,), seed=8)
        model.compile(SGD(0.1), CrossEntropyLoss())
        rng = np.random.default_rng(0)
        x = rng.standard_normal((60, 2)).astype(np.float32)
        y = (x[:, 0] > 0).astype(np.int64)
        history = model.fit(x, y, epochs=10, batch_size=20)
        assert len(history.iteration_accuracy) == len(history.iteration_loss)
        assert all(0.0 <= a <= 1.0 for a in history.iteration_accuracy)
        # The task is learnable: accuracy ends above chance.
        assert np.mean(history.iteration_accuracy[-3:]) > 0.7

    def test_regression_has_no_accuracy(self):
        model = make_model()  # MSE loss
        x, y = make_data(20)
        history = model.fit(x, y, epochs=1, batch_size=10)
        assert history.iteration_accuracy == []
