"""Loss function correctness and gradients."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.dnn.losses import (
    CrossEntropyLoss,
    MAELoss,
    MSELoss,
    get_loss,
    softmax,
)
from tests.dnn.gradcheck import numerical_grad

RNG = np.random.default_rng(3)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        probs = softmax(RNG.standard_normal((5, 4)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5))

    def test_stable_for_large_logits(self):
        probs = softmax(np.array([[1000.0, 1001.0]]))
        assert np.all(np.isfinite(probs))
        assert probs[0, 1] > probs[0, 0]


class TestCrossEntropy:
    def test_matches_manual(self):
        loss = CrossEntropyLoss()
        logits = np.array([[2.0, 0.0], [0.0, 3.0]])
        target = np.array([0, 1])
        probs = softmax(logits)
        expected = -np.mean(np.log(probs[[0, 1], [0, 1]]))
        assert loss.forward(logits, target) == pytest.approx(expected)

    def test_onehot_targets_equivalent(self):
        loss = CrossEntropyLoss()
        logits = RNG.standard_normal((6, 3))
        labels = np.array([0, 1, 2, 0, 1, 2])
        onehot = np.eye(3)[labels]
        assert loss.forward(logits, labels) == pytest.approx(
            loss.forward(logits, onehot)
        )

    def test_perfect_prediction_low_loss(self):
        loss = CrossEntropyLoss()
        logits = np.array([[100.0, 0.0]])
        assert loss.forward(logits, np.array([0])) < 1e-6

    def test_gradient_numerical(self):
        loss = CrossEntropyLoss()
        logits = RNG.standard_normal((4, 3))
        target = np.array([0, 2, 1, 1])
        analytic = loss.backward(logits, target)
        numeric = numerical_grad(
            lambda: loss.forward(logits, target), logits, eps=1e-4
        )
        np.testing.assert_allclose(analytic, numeric, rtol=1e-2, atol=1e-4)

    def test_accuracy(self):
        pred = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        assert CrossEntropyLoss.accuracy(pred, np.array([0, 1, 1])) == pytest.approx(
            2 / 3
        )

    def test_accuracy_onehot(self):
        pred = np.array([[0.9, 0.1], [0.2, 0.8]])
        onehot = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert CrossEntropyLoss.accuracy(pred, onehot) == 1.0


class TestRegressionLosses:
    def test_mse_matches_manual(self):
        loss = MSELoss()
        pred = np.array([1.0, 2.0])
        target = np.array([0.0, 4.0])
        assert loss.forward(pred, target) == pytest.approx((1 + 4) / 2)

    def test_mse_gradient(self):
        loss = MSELoss()
        pred = RNG.standard_normal((3, 2))
        target = RNG.standard_normal((3, 2))
        analytic = loss.backward(pred, target)
        numeric = numerical_grad(lambda: loss.forward(pred, target), pred, eps=1e-4)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-2, atol=1e-5)

    def test_mae_matches_manual(self):
        loss = MAELoss()
        assert loss.forward(np.array([1.0, -2.0]), np.zeros(2)) == pytest.approx(1.5)

    def test_mae_gradient_is_sign(self):
        loss = MAELoss()
        pred = np.array([2.0, -3.0])
        grad = loss.backward(pred, np.zeros(2))
        np.testing.assert_allclose(grad, [0.5, -0.5])

    def test_zero_loss_at_target(self):
        for loss in (MSELoss(), MAELoss()):
            x = RNG.standard_normal((2, 2))
            assert loss.forward(x, x.copy()) == pytest.approx(0.0)


class TestRegistry:
    @pytest.mark.parametrize("name", ["cross_entropy", "mse", "mae"])
    def test_get_loss(self, name):
        assert get_loss(name).name == name

    def test_unknown_loss(self):
        with pytest.raises(ConfigurationError):
            get_loss("hinge")
