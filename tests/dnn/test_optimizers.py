"""Optimizer update rules."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.dnn.optimizers import SGD, Adam


def quadratic_params():
    return {"w": np.array([10.0], dtype=np.float64)}


def quadratic_grads(params):
    return {"w": 2.0 * params["w"]}  # d/dw of w^2


class TestSGD:
    def test_plain_step(self):
        opt = SGD(lr=0.1)
        params = {"w": np.array([1.0])}
        opt.step(params, {"w": np.array([2.0])})
        np.testing.assert_allclose(params["w"], [0.8])

    def test_converges_on_quadratic(self):
        opt = SGD(lr=0.1)
        params = quadratic_params()
        for _ in range(100):
            opt.step(params, quadratic_grads(params))
        assert abs(params["w"][0]) < 1e-6

    def test_momentum_accelerates(self):
        plain, heavy = SGD(lr=0.01), SGD(lr=0.01, momentum=0.9)
        p1, p2 = quadratic_params(), quadratic_params()
        for _ in range(20):
            plain.step(p1, quadratic_grads(p1))
            heavy.step(p2, quadratic_grads(p2))
        assert abs(p2["w"][0]) < abs(p1["w"][0])

    def test_momentum_state_dict(self):
        opt = SGD(lr=0.1, momentum=0.9)
        params = {"w": np.array([1.0])}
        opt.step(params, {"w": np.array([1.0])})
        state = opt.state_dict()
        assert "momentum/w" in state

    def test_decay_reduces_lr(self):
        opt = SGD(lr=1.0, decay=1.0)
        assert opt.current_lr == 1.0
        opt.step({"w": np.array([0.0])}, {"w": np.array([0.0])})
        assert opt.current_lr == pytest.approx(0.5)  # 1/(1+1*1)

    def test_invalid_hyperparams(self):
        with pytest.raises(ConfigurationError):
            SGD(lr=0.0)
        with pytest.raises(ConfigurationError):
            SGD(lr=0.1, momentum=1.0)
        with pytest.raises(ConfigurationError):
            SGD(lr=0.1, decay=-0.1)


class TestAdam:
    def test_first_step_size_is_lr(self):
        # With bias correction the first Adam step is ~lr * sign(grad).
        opt = Adam(lr=0.1)
        params = {"w": np.array([1.0])}
        opt.step(params, {"w": np.array([5.0])})
        np.testing.assert_allclose(params["w"], [0.9], atol=1e-6)

    def test_converges_on_quadratic(self):
        opt = Adam(lr=0.3)
        params = quadratic_params()
        for _ in range(300):
            opt.step(params, quadratic_grads(params))
        assert abs(params["w"][0]) < 1e-3

    def test_state_dict_has_moments(self):
        opt = Adam()
        params = {"w": np.array([1.0])}
        opt.step(params, {"w": np.array([1.0])})
        state = opt.state_dict()
        assert "adam_m/w" in state and "adam_v/w" in state

    def test_invalid_betas(self):
        with pytest.raises(ConfigurationError):
            Adam(beta1=1.0)
        with pytest.raises(ConfigurationError):
            Adam(beta2=-0.1)

    def test_iterations_counter(self):
        opt = Adam()
        params = {"w": np.array([1.0])}
        for _ in range(3):
            opt.step(params, {"w": np.array([0.1])})
        assert opt.iterations == 3

    def test_decay_applies(self):
        opt = Adam(lr=0.1, decay=0.5)
        params = {"w": np.array([1.0])}
        opt.step(params, {"w": np.array([1.0])})
        # Second step uses lr/(1+0.5) = 0.0667
        assert opt.current_lr == pytest.approx(0.1 / 1.5)
