"""Sequential model container tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.dnn.layers import Dense, ReLU
from repro.dnn.losses import CrossEntropyLoss
from repro.dnn.models import Sequential
from repro.dnn.optimizers import SGD


def make_model(seed=1):
    model = Sequential(
        [Dense(8, name="d1"), ReLU(name="r"), Dense(2, name="d2")],
        input_shape=(4,),
        name="m",
        seed=seed,
    )
    model.compile(SGD(lr=0.1), CrossEntropyLoss())
    return model


RNG = np.random.default_rng(9)


class TestConstruction:
    def test_output_shape_propagates(self):
        assert make_model().output_shape == (2,)

    def test_empty_layers_rejected(self):
        with pytest.raises(ConfigurationError):
            Sequential([], input_shape=(4,))

    def test_duplicate_layer_names_rejected(self):
        with pytest.raises(ConfigurationError):
            Sequential(
                [Dense(3, name="same"), Dense(3, name="same")], input_shape=(4,)
            )

    def test_num_params_and_tensors(self):
        model = make_model()
        assert model.num_params == (4 * 8 + 8) + (8 * 2 + 2)
        assert model.num_tensors == 4

    def test_seed_controls_init(self):
        a, b = make_model(seed=5), make_model(seed=5)
        np.testing.assert_array_equal(
            a.state_dict()["d1/W"], b.state_dict()["d1/W"]
        )
        c = make_model(seed=6)
        assert not np.array_equal(a.state_dict()["d1/W"], c.state_dict()["d1/W"])

    def test_summary_lists_layers(self):
        text = make_model().summary()
        assert "d1" in text and "total params" in text


class TestStateDict:
    def test_roundtrip(self):
        a, b = make_model(seed=1), make_model(seed=2)
        b.load_state_dict(a.state_dict())
        for key, value in a.state_dict().items():
            np.testing.assert_array_equal(value, b.state_dict()[key])

    def test_state_dict_is_a_copy(self):
        model = make_model()
        state = model.state_dict()
        state["d1/W"][...] = 99.0
        assert not np.any(model.state_dict()["d1/W"] == 99.0)

    def test_missing_key_rejected(self):
        model = make_model()
        state = model.state_dict()
        del state["d1/W"]
        with pytest.raises(ConfigurationError):
            model.load_state_dict(state)

    def test_extra_key_rejected(self):
        model = make_model()
        state = model.state_dict()
        state["ghost/W"] = np.zeros(3)
        with pytest.raises(ConfigurationError):
            model.load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        model = make_model()
        state = model.state_dict()
        state["d1/W"] = np.zeros((2, 2))
        with pytest.raises(ConfigurationError):
            model.load_state_dict(state)

    def test_loaded_weights_change_predictions(self):
        a, b = make_model(seed=1), make_model(seed=2)
        x = RNG.standard_normal((4, 4)).astype(np.float32)
        before = b.predict(x)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(b.predict(x), a.predict(x))
        assert not np.allclose(before, b.predict(x))


class TestComputation:
    def test_predict_batches_consistent(self):
        model = make_model()
        x = RNG.standard_normal((10, 4)).astype(np.float32)
        np.testing.assert_allclose(
            model.predict(x, batch_size=3), model.predict(x, batch_size=10),
            rtol=1e-5,
        )

    def test_train_batch_reduces_loss(self):
        model = make_model()
        x = RNG.standard_normal((32, 4)).astype(np.float32)
        y = (x[:, 0] > 0).astype(np.int64)
        first = model.train_batch(x, y)
        for _ in range(50):
            last = model.train_batch(x, y)
        assert last < first

    def test_train_batch_requires_compile(self):
        model = Sequential([Dense(2)], input_shape=(4,))
        with pytest.raises(ConfigurationError):
            model.train_batch(np.zeros((1, 4)), np.zeros(1, dtype=int))

    def test_evaluate_matches_loss(self):
        model = make_model()
        x = RNG.standard_normal((8, 4)).astype(np.float32)
        y = np.zeros(8, dtype=np.int64)
        expected = model.loss.forward(model.forward(x), y)
        assert model.evaluate(x, y) == pytest.approx(expected)

    def test_evaluate_batched(self):
        model = make_model()
        x = RNG.standard_normal((10, 4)).astype(np.float32)
        y = np.zeros(10, dtype=np.int64)
        assert model.evaluate(x, y, batch_size=3) == pytest.approx(
            model.evaluate(x, y, batch_size=10), rel=1e-6
        )
