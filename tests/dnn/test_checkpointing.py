"""Full training-state checkpoint tests: pack/unpack and exact resume."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.dnn.checkpointing import (
    is_full_state,
    pack_training_state,
    unpack_training_state,
)
from repro.dnn.layers import Dense, ReLU
from repro.dnn.losses import MSELoss
from repro.dnn.models import Sequential
from repro.dnn.optimizers import SGD, Adam
from repro.dnn.serialization import ViperSerializer


def make_model(optimizer, seed=5):
    model = Sequential(
        [Dense(4, name="d1"), ReLU(name="r"), Dense(1, name="d2")],
        input_shape=(3,),
        seed=seed,
    )
    model.compile(optimizer, MSELoss())
    return model


def make_data(n=64, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 3)).astype(np.float32)
    y = (x @ np.array([[0.5], [-1.0], [2.0]])).astype(np.float32)
    return x, y


@pytest.mark.parametrize("opt_factory", [lambda: SGD(0.05, momentum=0.9),
                                         lambda: Adam(0.01)],
                         ids=["sgd-momentum", "adam"])
class TestPackUnpack:
    def test_roundtrip_restores_everything(self, opt_factory):
        model = make_model(opt_factory())
        x, y = make_data()
        for _ in range(10):
            model.train_batch(x, y)
        state = pack_training_state(model, model.optimizer, iteration=10)
        assert is_full_state(state)

        fresh = make_model(opt_factory(), seed=99)
        iteration = unpack_training_state(state, fresh, fresh.optimizer)
        assert iteration == 10
        assert fresh.optimizer.iterations == model.optimizer.iterations
        for key, value in model.state_dict().items():
            np.testing.assert_array_equal(fresh.state_dict()[key], value)
        for key, value in model.optimizer.state_dict().items():
            np.testing.assert_array_equal(
                fresh.optimizer.state_dict()[key], value
            )

    def test_resumed_training_matches_uninterrupted(self, opt_factory):
        """Train 20 steps straight vs 10 + checkpoint/restore + 10."""
        x, y = make_data()
        straight = make_model(opt_factory())
        for _ in range(20):
            straight.train_batch(x, y)

        first = make_model(opt_factory())
        for _ in range(10):
            first.train_batch(x, y)
        blob = ViperSerializer().dumps(
            pack_training_state(first, first.optimizer, 10)
        )

        resumed = make_model(opt_factory(), seed=123)
        unpack_training_state(
            ViperSerializer().loads(blob), resumed, resumed.optimizer
        )
        for _ in range(10):
            resumed.train_batch(x, y)

        for key, value in straight.state_dict().items():
            np.testing.assert_allclose(
                resumed.state_dict()[key], value, rtol=1e-5, atol=1e-6
            )

    def test_serializer_roundtrip(self, opt_factory):
        model = make_model(opt_factory())
        x, y = make_data()
        model.train_batch(x, y)
        state = pack_training_state(model, model.optimizer, 1)
        ser = ViperSerializer()
        back = ser.loads(ser.dumps(state))
        assert set(back) == set(state)


class TestValidation:
    def test_weights_only_is_not_full_state(self):
        model = make_model(SGD(0.01))
        assert not is_full_state(model.state_dict())

    def test_unpack_rejects_bare_weights(self):
        model = make_model(SGD(0.01))
        with pytest.raises(StorageError):
            unpack_training_state(model.state_dict(), model, model.optimizer)

    def test_negative_iteration_rejected(self):
        model = make_model(SGD(0.01))
        with pytest.raises(StorageError):
            pack_training_state(model, model.optimizer, -1)

    def test_dropout_rng_state_restored(self):
        """Exact resume must include stochastic-layer RNG state."""
        from repro.dnn.layers import Dropout

        def build():
            model = Sequential(
                [Dense(8, name="d1"), Dropout(0.5, name="drop", seed=3),
                 Dense(1, name="d2")],
                input_shape=(3,),
                seed=6,
            )
            model.compile(SGD(0.05), MSELoss())
            return model

        x, y = make_data()
        straight = build()
        for _ in range(12):
            straight.train_batch(x, y)

        first = build()
        for _ in range(6):
            first.train_batch(x, y)
        state = pack_training_state(first, first.optimizer, 6)
        resumed = build()
        unpack_training_state(state, resumed, resumed.optimizer)
        for _ in range(6):
            resumed.train_batch(x, y)

        for key, value in straight.state_dict().items():
            np.testing.assert_allclose(
                resumed.state_dict()[key], value, rtol=1e-6, atol=1e-7
            )

    def test_lr_decay_continues_after_resume(self):
        opt = SGD(1.0, decay=0.5)
        model = make_model(opt)
        x, y = make_data()
        for _ in range(4):
            model.train_batch(x, y)
        lr_before = opt.current_lr
        state = pack_training_state(model, opt, 4)

        fresh_opt = SGD(1.0, decay=0.5)
        fresh = make_model(fresh_opt)
        unpack_training_state(state, fresh, fresh_opt)
        assert fresh_opt.current_lr == pytest.approx(lr_before)
