"""Checkpoint serializer tests."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.dnn.serialization import (
    H5LikeSerializer,
    ViperSerializer,
    get_serializer,
    state_dict_nbytes,
)

RNG = np.random.default_rng(11)


def sample_state():
    return {
        "conv/W": RNG.standard_normal((3, 2, 4)).astype(np.float32),
        "conv/b": np.zeros(4, dtype=np.float32),
        "dense/W": RNG.standard_normal((8, 2)).astype(np.float64),
        "scalar": np.array(3.14),
    }


@pytest.fixture(params=[ViperSerializer, H5LikeSerializer], ids=["viper", "h5py"])
def serializer(request):
    return request.param()


class TestRoundtrip:
    def test_values_preserved(self, serializer):
        state = sample_state()
        back = serializer.loads(serializer.dumps(state))
        assert set(back) == set(state)
        for key in state:
            np.testing.assert_array_equal(back[key], state[key])

    def test_dtypes_preserved(self, serializer):
        state = sample_state()
        back = serializer.loads(serializer.dumps(state))
        for key in state:
            assert back[key].dtype == state[key].dtype

    def test_shapes_preserved(self, serializer):
        state = sample_state()
        back = serializer.loads(serializer.dumps(state))
        for key in state:
            assert back[key].shape == state[key].shape

    def test_unicode_names(self, serializer):
        state = {"слой/väikt": np.ones(2, dtype=np.float32)}
        back = serializer.loads(serializer.dumps(state))
        assert "слой/väikt" in back

    def test_empty_state_rejected(self, serializer):
        with pytest.raises(StorageError):
            serializer.dumps({})

    def test_deterministic_output(self, serializer):
        state = sample_state()
        assert serializer.dumps(state) == serializer.dumps(state)

    def test_noncontiguous_tensor(self, serializer):
        base = RNG.standard_normal((4, 6)).astype(np.float32)
        state = {"t": base[:, ::2]}  # strided view
        back = serializer.loads(serializer.dumps(state))
        np.testing.assert_array_equal(back["t"], base[:, ::2])


class TestFormatDiscrimination:
    def test_wrong_magic_rejected(self):
        state = sample_state()
        viper_blob = ViperSerializer().dumps(state)
        with pytest.raises(StorageError):
            H5LikeSerializer().loads(viper_blob)
        h5_blob = H5LikeSerializer().dumps(state)
        with pytest.raises(StorageError):
            ViperSerializer().loads(h5_blob)

    def test_h5_blob_is_larger(self):
        state = sample_state()
        assert len(H5LikeSerializer().dumps(state)) > len(
            ViperSerializer().dumps(state)
        )


class TestTimingModel:
    def test_h5_overheads_exceed_viper(self):
        viper, h5 = ViperSerializer(), H5LikeSerializer()
        assert h5.serialize_seconds(30) > viper.serialize_seconds(30)
        assert h5.wire_bytes(10**9) > viper.wire_bytes(10**9)

    def test_per_tensor_overhead_scales(self):
        ser = H5LikeSerializer()
        assert ser.serialize_seconds(100) > ser.serialize_seconds(10)

    def test_wire_bytes_factor(self):
        ser = ViperSerializer()
        assert ser.wire_bytes(1000) == int(1000 * ser.bytes_overhead_factor)


class TestHelpers:
    def test_state_dict_nbytes(self):
        state = {"a": np.zeros(10, dtype=np.float32), "b": np.zeros(5, dtype=np.float64)}
        assert state_dict_nbytes(state) == 40 + 40

    def test_get_serializer(self):
        assert get_serializer("viper").name == "viper"
        assert get_serializer("h5py").name == "h5py"
        with pytest.raises(StorageError):
            get_serializer("pickle")


class TestChunkAPI:
    def test_dump_chunks_concat_equals_dumps(self, serializer):
        state = sample_state()
        assert b"".join(serializer.dump_chunks(state)) == serializer.dumps(state)

    def test_load_chunks_roundtrip(self, serializer):
        state = sample_state()
        blob = serializer.dumps(state)
        pieces = [blob[:7], blob[7:100], memoryview(blob)[100:], b""]
        back = serializer.load_chunks(pieces)
        for key in state:
            np.testing.assert_array_equal(back[key], state[key])

    def test_dump_chunks_are_views_not_copies(self, serializer):
        arr = RNG.standard_normal(64).astype(np.float32)
        state = {"t": arr}
        chunks = list(serializer.dump_chunks(state))
        before = b"".join(chunks)
        arr[0] += 1.0  # tensor payload chunks alias the array
        assert b"".join(chunks) != before


class TestZeroCopyLoads:
    def test_equal_to_copying_load(self, serializer):
        state = sample_state()
        blob = serializer.dumps(state)
        copied = serializer.loads(blob, copy=True)
        aliased = serializer.loads(blob, copy=False)
        for key in state:
            np.testing.assert_array_equal(aliased[key], copied[key])

    def test_zero_copy_tensors_are_read_only(self, serializer):
        blob = serializer.dumps(sample_state())
        back = serializer.loads(blob, copy=False)
        for tensor in back.values():
            assert not tensor.flags.writeable
            if tensor.size:
                with pytest.raises(ValueError):
                    tensor[(0,) * tensor.ndim] = 0

    def test_zero_copy_aliases_blob(self, serializer):
        state = {"t": RNG.standard_normal(32).astype(np.float32)}
        buf = bytearray(serializer.dumps(state))
        back = serializer.loads(buf, copy=False)
        before = back["t"].copy()
        buf[-1] ^= 0xFF  # flip a payload byte under the view
        assert not np.array_equal(back["t"], before)

    def test_copying_load_does_not_alias(self, serializer):
        state = {"t": RNG.standard_normal(32).astype(np.float32)}
        buf = bytearray(serializer.dumps(state))
        back = serializer.loads(buf, copy=True)
        before = back["t"].copy()
        buf[-1] ^= 0xFF
        np.testing.assert_array_equal(back["t"], before)


class TestEdgeShapes:
    @pytest.mark.parametrize("copy", [True, False], ids=["copy", "zero-copy"])
    def test_zero_dim_empty_and_fortran(self, serializer, copy):
        state = {
            "scalar": np.array(2.5),
            "empty": np.zeros((0, 3), dtype=np.float32),
            "fortran": np.asfortranarray(
                RNG.standard_normal((4, 5)).astype(np.float64)
            ),
        }
        back = serializer.loads(serializer.dumps(state), copy=copy)
        for key in state:
            np.testing.assert_array_equal(back[key], state[key])
            assert back[key].dtype == state[key].dtype
            assert back[key].shape == state[key].shape


try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the image
    HAVE_HYPOTHESIS = False


# The serializers are stateless, so hypothesis drives the classes directly
# (its health check forbids mixing @given with function-scoped fixtures).
@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
@pytest.mark.parametrize(
    "serializer_cls", [ViperSerializer, H5LikeSerializer], ids=["viper", "h5py"]
)
class TestChunkProperties:
    @staticmethod
    def _state_from(shapes):
        rng = np.random.default_rng(sum(sum(s) for s in shapes) + len(shapes))
        return {
            f"t{i}": rng.standard_normal(shape).astype(np.float32)
            for i, shape in enumerate(shapes)
        }

    @given(
        shapes=st.lists(
            st.tuples(st.integers(0, 8), st.integers(1, 8)), min_size=1, max_size=5
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_chunks_always_concat_to_dumps(self, serializer_cls, shapes):
        serializer = serializer_cls()
        state = self._state_from(shapes)
        assert b"".join(serializer.dump_chunks(state)) == serializer.dumps(state)

    @given(
        shapes=st.lists(
            st.tuples(st.integers(0, 8), st.integers(1, 8)), min_size=1, max_size=5
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_zero_copy_load_always_matches(self, serializer_cls, shapes):
        serializer = serializer_cls()
        state = self._state_from(shapes)
        blob = serializer.dumps(state)
        back = serializer.loads(blob, copy=False)
        assert set(back) == set(state)
        for key in state:
            np.testing.assert_array_equal(back[key], state[key])
            assert not back[key].flags.writeable
