"""Checkpoint serializer tests."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.dnn.serialization import (
    H5LikeSerializer,
    ViperSerializer,
    get_serializer,
    state_dict_nbytes,
)

RNG = np.random.default_rng(11)


def sample_state():
    return {
        "conv/W": RNG.standard_normal((3, 2, 4)).astype(np.float32),
        "conv/b": np.zeros(4, dtype=np.float32),
        "dense/W": RNG.standard_normal((8, 2)).astype(np.float64),
        "scalar": np.array(3.14),
    }


@pytest.fixture(params=[ViperSerializer, H5LikeSerializer], ids=["viper", "h5py"])
def serializer(request):
    return request.param()


class TestRoundtrip:
    def test_values_preserved(self, serializer):
        state = sample_state()
        back = serializer.loads(serializer.dumps(state))
        assert set(back) == set(state)
        for key in state:
            np.testing.assert_array_equal(back[key], state[key])

    def test_dtypes_preserved(self, serializer):
        state = sample_state()
        back = serializer.loads(serializer.dumps(state))
        for key in state:
            assert back[key].dtype == state[key].dtype

    def test_shapes_preserved(self, serializer):
        state = sample_state()
        back = serializer.loads(serializer.dumps(state))
        for key in state:
            assert back[key].shape == state[key].shape

    def test_unicode_names(self, serializer):
        state = {"слой/väikt": np.ones(2, dtype=np.float32)}
        back = serializer.loads(serializer.dumps(state))
        assert "слой/väikt" in back

    def test_empty_state_rejected(self, serializer):
        with pytest.raises(StorageError):
            serializer.dumps({})

    def test_deterministic_output(self, serializer):
        state = sample_state()
        assert serializer.dumps(state) == serializer.dumps(state)

    def test_noncontiguous_tensor(self, serializer):
        base = RNG.standard_normal((4, 6)).astype(np.float32)
        state = {"t": base[:, ::2]}  # strided view
        back = serializer.loads(serializer.dumps(state))
        np.testing.assert_array_equal(back["t"], base[:, ::2])


class TestFormatDiscrimination:
    def test_wrong_magic_rejected(self):
        state = sample_state()
        viper_blob = ViperSerializer().dumps(state)
        with pytest.raises(StorageError):
            H5LikeSerializer().loads(viper_blob)
        h5_blob = H5LikeSerializer().dumps(state)
        with pytest.raises(StorageError):
            ViperSerializer().loads(h5_blob)

    def test_h5_blob_is_larger(self):
        state = sample_state()
        assert len(H5LikeSerializer().dumps(state)) > len(
            ViperSerializer().dumps(state)
        )


class TestTimingModel:
    def test_h5_overheads_exceed_viper(self):
        viper, h5 = ViperSerializer(), H5LikeSerializer()
        assert h5.serialize_seconds(30) > viper.serialize_seconds(30)
        assert h5.wire_bytes(10**9) > viper.wire_bytes(10**9)

    def test_per_tensor_overhead_scales(self):
        ser = H5LikeSerializer()
        assert ser.serialize_seconds(100) > ser.serialize_seconds(10)

    def test_wire_bytes_factor(self):
        ser = ViperSerializer()
        assert ser.wire_bytes(1000) == int(1000 * ser.bytes_overhead_factor)


class TestHelpers:
    def test_state_dict_nbytes(self):
        state = {"a": np.zeros(10, dtype=np.float32), "b": np.zeros(5, dtype=np.float64)}
        assert state_dict_nbytes(state) == 40 + 40

    def test_get_serializer(self):
        assert get_serializer("viper").name == "viper"
        assert get_serializer("h5py").name == "h5py"
        with pytest.raises(StorageError):
            get_serializer("pickle")
