"""Unit tests for the Figure 8 live measurement harness."""

import pytest

from repro.analysis.latency import FIG8_CONFIGS, measure_latencies
from repro.substrates.profiles import FRONTIER, POLARIS


class TestMeasureLatencies:
    def test_all_six_configurations_measured(self):
        measured = measure_latencies("nt3a")
        assert set(measured) == {label for label, *_rest in FIG8_CONFIGS}
        assert all(v > 0 for v in measured.values())

    def test_fig8_ordering_on_polaris(self):
        measured = measure_latencies("nt3a", profile=POLARIS)
        assert (
            measured["gpu-sync"]
            < measured["host-sync"]
            < measured["viper-pfs"]
            < measured["h5py-baseline"]
        )

    def test_fig8_ordering_on_frontier(self):
        measured = measure_latencies("nt3a", profile=FRONTIER)
        assert (
            measured["gpu-sync"]
            < measured["host-sync"]
            < measured["viper-pfs"]
            < measured["h5py-baseline"]
        )

    def test_deterministic(self):
        a = measure_latencies("nt3a")
        b = measure_latencies("nt3a")
        for key in a:
            assert a[key] == pytest.approx(b[key])
