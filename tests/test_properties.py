"""Property-based tests (hypothesis) on core invariants.

Each property targets an invariant the rest of the system leans on:
cost algebra, tier-store accounting, serialization roundtrips, Eq. 1
monotonicity, Algorithm 1 conservation, schedule validity, double-buffer
version monotonicity, and CIL accounting conservation.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.substrates.cost import Cost
from repro.substrates.memory.storage import EvictionPolicy, TierStore
from repro.substrates.memory.tiers import TierKind, TierSpec
from repro.dnn.serialization import H5LikeSerializer, ViperSerializer
from repro.core.predictor.cilp import CILParams, CILPredictor, cil_window
from repro.core.predictor.schedules import (
    epoch_schedule,
    fixed_interval_schedule,
    greedy_schedule,
)
from repro.core.predictor.tlp import smooth_losses
from repro.core.transfer.double_buffer import DoubleBuffer
from repro.workflow.consumer import VersionSwitch, cil_from_switches

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

finite_seconds = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
labels = st.sampled_from(["pfs.write", "link.ib", "serialize", "metadata.read"])
costs = st.lists(
    st.tuples(labels, finite_seconds), min_size=0, max_size=6
).map(lambda items: Cost(tuple(items)))

params_strategy = st.builds(
    CILParams,
    t_train=st.floats(0.001, 1.0),
    t_p=st.floats(0.0, 5.0),
    t_c=st.floats(0.0, 5.0),
    t_infer=st.floats(0.001, 0.5),
)


class TestCostAlgebra:
    @given(costs, costs)
    def test_addition_totals(self, a, b):
        assert (a + b).total == pytest.approx(a.total + b.total)

    @given(costs, costs, costs)
    def test_addition_associative_in_total(self, a, b, c):
        assert ((a + b) + c).total == pytest.approx((a + (b + c)).total)

    @given(costs)
    def test_zero_identity(self, a):
        assert (a + Cost.zero()).total == pytest.approx(a.total)

    @given(costs, st.floats(0.0, 100.0))
    def test_scaling_linear(self, a, k):
        assert a.scaled(k).total == pytest.approx(a.total * k)

    @given(costs)
    def test_breakdown_sums_to_total(self, a):
        assert sum(a.breakdown().values()) == pytest.approx(a.total)


class TestTierStoreAccounting:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c", "d"]),
                st.binary(min_size=0, max_size=64),
                st.integers(0, 100),
            ),
            max_size=30,
        )
    )
    def test_used_bytes_matches_contents(self, operations):
        spec = TierSpec(
            name="t", kind=TierKind.HOST_DRAM, capacity_bytes=100_000,
            read_bw=1.0, write_bw=1.0,
        )
        store = TierStore(spec)
        for key, payload, vbytes in operations:
            store.put(key, payload, virtual_bytes=vbytes)
        expected = sum(store.stat(k).virtual_bytes for k in store.keys())
        assert store.used_bytes == expected
        assert store.free_bytes == spec.capacity_bytes - expected

    @given(
        st.lists(
            st.tuples(st.text(min_size=1, max_size=8), st.integers(1, 40)),
            min_size=1,
            max_size=25,
        )
    )
    def test_lru_never_exceeds_capacity(self, writes):
        spec = TierSpec(
            name="t", kind=TierKind.HOST_DRAM, capacity_bytes=100,
            read_bw=1.0, write_bw=1.0,
        )
        store = TierStore(spec, eviction=EvictionPolicy.LRU)
        for key, vbytes in writes:
            store.put(key, b"x", virtual_bytes=vbytes)
            assert store.used_bytes <= spec.capacity_bytes


ARRAY_DTYPES = [np.float32, np.float64, np.int32, np.int64, np.uint8]


@st.composite
def state_dicts(draw):
    n = draw(st.integers(1, 5))
    state = {}
    for i in range(n):
        name = f"t{i}/" + draw(st.text(min_size=1, max_size=10))
        dtype = draw(st.sampled_from(ARRAY_DTYPES))
        shape = tuple(draw(st.lists(st.integers(0, 4), min_size=0, max_size=3)))
        seed = draw(st.integers(0, 2**31))
        rng = np.random.default_rng(seed)
        values = rng.integers(-100, 100, size=shape).astype(dtype)
        state[name] = values
    return state


class TestSerializationRoundtrip:
    @given(state_dicts())
    @settings(max_examples=40, deadline=None)
    def test_viper_roundtrip(self, state):
        ser = ViperSerializer()
        back = ser.loads(ser.dumps(state))
        assert set(back) == set(state)
        for key in state:
            assert back[key].dtype == state[key].dtype
            assert back[key].shape == state[key].shape
            np.testing.assert_array_equal(back[key], state[key])

    @given(state_dicts())
    @settings(max_examples=20, deadline=None)
    def test_h5like_roundtrip(self, state):
        ser = H5LikeSerializer()
        back = ser.loads(ser.dumps(state))
        for key in state:
            np.testing.assert_array_equal(back[key], state[key])


class TestEq1Monotonicity:
    @given(
        params_strategy,
        st.integers(1, 50),
        st.lists(st.floats(0.0, 500.0), min_size=2, max_size=20),
    )
    def test_iters_monotone_in_time(self, params, interval, times):
        pred = CILPredictor(lambda x: 1.0, params)
        times = sorted(times)
        iters = [pred.iters_at_time(t, interval) for t in times]
        assert all(b >= a for a, b in zip(iters, iters[1:]))

    @given(params_strategy, st.integers(1, 50), st.floats(0.0, 500.0))
    def test_iters_bounded_by_pure_training(self, params, interval, t):
        """Stalls can only slow iteration progress, never speed it up."""
        pred = CILPredictor(lambda x: 1.0, params)
        got = pred.iters_at_time(t, interval)
        assert got <= int(t / params.t_train) + 1


class TestAlgorithm1Conservation:
    @given(
        params_strategy,
        st.integers(1, 100),
        st.floats(0.0, 10.0),
        st.integers(1, 5),
        st.integers(0, 10_000),
    )
    def test_window_accounting(self, params, inter, loss, ver, rem):
        acc, infers = cil_window(inter, loss, ver, rem, params)
        assert 0 <= infers <= rem
        assert acc == pytest.approx(loss * infers)


class TestScheduleValidity:
    @given(
        st.integers(0, 50),
        st.integers(1, 200),
        st.integers(1, 60),
    )
    def test_epoch_schedule_in_range(self, start, span, ipe):
        end = start + span
        schedule = epoch_schedule(start, end, ipe)
        for it in schedule.iterations:
            assert start < it <= end
            assert it % ipe == 0

    @given(
        params_strategy,
        st.integers(0, 20),
        st.integers(5, 80),
        st.integers(1, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_fixed_schedule_regular_and_in_range(self, params, start, span, infers):
        end = start + span
        schedule = fixed_interval_schedule(
            start, end, infers, lambda x: 1.0 / (1 + x), params, max_interval=20
        )
        assert all(start < it <= end for it in schedule.iterations)
        gaps = set(np.diff((start,) + schedule.iterations))
        assert gaps <= {schedule.interval}

    @given(
        params_strategy,
        st.floats(0.001, 1.0),
        st.integers(5, 100),
    )
    @settings(max_examples=30, deadline=None)
    def test_greedy_iterations_strictly_increasing(self, params, thresh, span):
        schedule = greedy_schedule(
            0, span, 1000, thresh, lambda x: 5.0 * np.exp(-0.1 * x), params
        )
        its = schedule.iterations
        assert all(b > a for a, b in zip(its, its[1:]))
        assert all(0 < it <= span for it in its)


class TestDoubleBufferProperty:
    @given(st.lists(st.integers(1, 1000), min_size=1, max_size=50))
    def test_versions_monotone_under_any_update_order(self, versions):
        buf = DoubleBuffer("m0", version=0)
        applied = 0
        for v in versions:
            try:
                buf.update(f"m{v}", v)
                applied += 1
            except Exception:
                pass  # stale updates rejected
        # Live version is the max applied prefix-max.
        assert buf.version == max([0] + [v for v in versions if v <= buf.version])
        assert buf.swaps == applied


class TestCILConservation:
    @given(
        st.lists(st.floats(0.01, 100.0), min_size=0, max_size=15),
        st.floats(0.001, 0.1),
        st.integers(0, 5000),
    )
    def test_every_request_counted_exactly_once(self, gaps, t_infer, total):
        times = np.cumsum([0.0] + sorted(gaps))
        switches = [
            VersionSwitch(float(t), i, i * 10, 1.0 / (i + 1))
            for i, t in enumerate(times)
        ]
        _cil, counts = cil_from_switches(switches, t_infer, total)
        assert counts.sum() == total

    @given(
        st.lists(st.floats(0.01, 100.0), min_size=0, max_size=15),
        st.integers(1, 2000),
    )
    def test_cil_bounded_by_extreme_losses(self, gaps, total):
        times = np.cumsum([0.0] + sorted(gaps))
        rng = np.random.default_rng(0)
        losses = rng.uniform(0.1, 5.0, size=len(times))
        switches = [
            VersionSwitch(float(t), i, i, float(lv))
            for i, (t, lv) in enumerate(zip(times, losses))
        ]
        cil, _ = cil_from_switches(switches, 0.01, total)
        assert losses.min() * total <= cil <= losses.max() * total + 1e-9


class TestSmoothing:
    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=60),
           st.integers(0, 15))
    def test_smoothing_stays_within_envelope(self, values, window):
        y = np.asarray(values)
        smoothed = smooth_losses(y, window)
        assert smoothed.min() >= y.min() - 1e-9
        assert smoothed.max() <= y.max() + 1e-9
        assert smoothed.shape == y.shape


@st.composite
def snapshot_pairs(draw):
    """A base snapshot and a mutation of it (same tensor set/shapes)."""
    n = draw(st.integers(1, 4))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    base = {}
    for i in range(n):
        shape = tuple(draw(st.lists(st.integers(1, 6), min_size=1, max_size=2)))
        base[f"t{i}"] = rng.standard_normal(shape).astype(np.float32)
    curr = {k: v.copy() for k, v in base.items()}
    # Mutate a random subset: whole tensors, single rows, or nothing.
    for name in base:
        action = draw(st.sampled_from(["none", "full", "row"]))
        if action == "full":
            curr[name] = curr[name] + 1.0
        elif action == "row" and curr[name].ndim >= 2:
            curr[name][0] += 1.0
    return base, curr


class TestDeltaRoundtrip:
    @given(snapshot_pairs())
    @settings(max_examples=50, deadline=None)
    def test_encode_apply_is_identity(self, pair):
        from repro.core.transfer.incremental import apply_delta, encode_delta

        base, curr = pair
        delta = encode_delta(base, curr, base_version=1)
        restored = apply_delta(base, delta)
        assert set(restored) == set(curr)
        for key in curr:
            np.testing.assert_array_equal(restored[key], curr[key])

    @given(snapshot_pairs())
    @settings(max_examples=50, deadline=None)
    def test_delta_never_larger_than_full_plus_marker(self, pair):
        from repro.core.transfer.incremental import (
            delta_payload_bytes,
            encode_delta,
        )

        base, curr = pair
        delta = encode_delta(base, curr, base_version=1)
        full = sum(int(t.nbytes) for t in curr.values())
        # Worst case: every tensor ships whole + the 8-byte marker +
        # per-tensor row indices never exceed the row payloads they index.
        assert delta_payload_bytes(delta) <= 2 * full + 8

    @given(snapshot_pairs())
    @settings(max_examples=30, deadline=None)
    def test_delta_survives_serialization(self, pair):
        from repro.core.transfer.incremental import apply_delta, encode_delta
        from repro.dnn.serialization import ViperSerializer

        base, curr = pair
        ser = ViperSerializer()
        delta = ser.loads(ser.dumps(encode_delta(base, curr, base_version=2)))
        restored = apply_delta(base, delta, expected_base_version=2)
        for key in curr:
            np.testing.assert_array_equal(restored[key], curr[key])


class TestRetentionProperties:
    @given(
        st.sets(st.integers(1, 200), min_size=1, max_size=40),
        st.integers(1, 10),
        st.integers(0, 10),
    )
    def test_retained_is_subset_and_keeps_extremes(self, versions, k, stride):
        from repro.core.transfer.retention import RetentionPolicy

        policy = RetentionPolicy(keep_latest=k, keep_every=stride)
        kept = policy.retained(sorted(versions))
        assert kept <= versions
        assert max(versions) in kept   # latest always survives
        assert min(versions) in kept   # lineage root always survives
        assert len(kept) >= min(len(versions), 1)
