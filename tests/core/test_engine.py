"""Async transfer engine tests."""

import threading
import time

import pytest

from repro.errors import TransferError
from repro.substrates.cost import Cost
from repro.core.transfer.engine import AsyncTransferEngine, TransferJob


class TestEngine:
    def test_job_runs_and_records_cost(self):
        engine = AsyncTransferEngine().start()
        job = engine.submit(
            TransferJob("j1", lambda: Cost.of("link", 1.5))
        )
        engine.drain()
        assert job.done.is_set()
        assert job.cost.total == pytest.approx(1.5)
        assert engine.completed == 1
        assert engine.background_cost.total == pytest.approx(1.5)
        engine.stop()

    def test_jobs_run_in_submission_order(self):
        engine = AsyncTransferEngine().start()
        order = []

        def action(tag):
            def run():
                order.append(tag)
                return Cost.zero()
            return run

        for tag in ("a", "b", "c"):
            engine.submit(TransferJob(tag, action(tag)))
        engine.drain()
        assert order == ["a", "b", "c"]
        engine.stop()

    def test_submit_before_start_rejected(self):
        with pytest.raises(TransferError):
            AsyncTransferEngine().submit(TransferJob("x", Cost.zero))

    def test_error_surfaced_on_drain(self):
        engine = AsyncTransferEngine().start()

        def boom():
            raise ValueError("injected")

        engine.submit(TransferJob("bad", boom))
        with pytest.raises(TransferError, match="bad"):
            engine.drain()
        assert engine.failures == ("bad",)
        engine.stop()

    def test_error_does_not_kill_worker(self):
        engine = AsyncTransferEngine().start()

        def boom():
            raise RuntimeError("x")

        engine.submit(TransferJob("bad", boom))
        engine.submit(TransferJob("good", lambda: Cost.of("c", 1.0)))
        engine.drain(raise_on_error=False)
        assert engine.completed == 1
        engine.stop()

    def test_caller_not_blocked_by_slow_job(self):
        engine = AsyncTransferEngine().start()
        release = threading.Event()

        def slow():
            release.wait(2.0)
            return Cost.zero()

        t0 = time.monotonic()
        engine.submit(TransferJob("slow", slow))
        submitted_in = time.monotonic() - t0
        assert submitted_in < 0.1
        release.set()
        engine.drain()
        engine.stop()

    def test_stop_idempotent(self):
        engine = AsyncTransferEngine().start()
        engine.stop()
        engine.stop()

    def test_submit_after_stop_raises(self):
        engine = AsyncTransferEngine().start()
        engine.stop()
        with pytest.raises(TransferError):
            engine.submit(TransferJob("late", lambda: Cost.zero()))

    def test_submit_after_stop_raises_even_unstarted(self):
        engine = AsyncTransferEngine()
        engine.stop()
        with pytest.raises(TransferError):
            engine.submit(TransferJob("late", lambda: Cost.zero()))
