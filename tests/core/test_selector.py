"""Transfer-selector policy tests."""

import pytest

from repro.errors import ConfigurationError
from repro.core.transfer.selector import TransferSelector
from repro.core.transfer.strategies import TransferStrategy

GB = 10**9


class TestPolicy:
    def test_prefers_gpu_when_it_fits(self):
        sel = TransferSelector(
            gpu_direct_available=True,
            gpu_staging_budget=20 * GB,
            host_staging_budget=100 * GB,
        )
        assert sel.select(5 * GB) is TransferStrategy.GPU_TO_GPU

    def test_double_buffering_needs_twice_the_size(self):
        sel = TransferSelector(gpu_staging_budget=9 * GB, host_staging_budget=100 * GB)
        # 2 * 5 GB > 9 GB -> GPU path rejected
        assert sel.select(5 * GB) is TransferStrategy.HOST_TO_HOST

    def test_falls_back_to_host_without_gpu_direct(self):
        sel = TransferSelector(
            gpu_direct_available=False,
            gpu_staging_budget=100 * GB,
            host_staging_budget=100 * GB,
        )
        assert sel.select(1 * GB) is TransferStrategy.HOST_TO_HOST

    def test_falls_back_to_pfs_when_nothing_fits(self):
        sel = TransferSelector(gpu_staging_budget=1 * GB, host_staging_budget=1 * GB)
        assert sel.select(5 * GB) is TransferStrategy.PFS

    def test_forced_strategy_wins(self):
        sel = TransferSelector(
            forced=TransferStrategy.PFS,
            gpu_staging_budget=100 * GB,
            host_staging_budget=100 * GB,
        )
        assert sel.select(1) is TransferStrategy.PFS

    def test_veto_hook_skips_candidates(self):
        vetoed = []

        def veto(strategy, nbytes):
            vetoed.append(strategy)
            return strategy is TransferStrategy.GPU_TO_GPU

        sel = TransferSelector(
            gpu_staging_budget=100 * GB,
            host_staging_budget=100 * GB,
            veto=veto,
        )
        assert sel.select(1 * GB) is TransferStrategy.HOST_TO_HOST
        assert TransferStrategy.GPU_TO_GPU in vetoed

    def test_zero_budgets_mean_pfs(self):
        assert TransferSelector().select(1) is TransferStrategy.PFS

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            TransferSelector().select(-1)

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            TransferSelector(gpu_staging_budget=-1)
