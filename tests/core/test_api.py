"""Viper facade and role-view tests."""

import numpy as np
import pytest

from repro import CaptureMode, Viper
from repro.errors import ServingError
from repro.dnn.layers import Dense
from repro.dnn.models import Sequential


def tiny_model_builder():
    return Sequential([Dense(2, name="d")], input_shape=(3,), seed=1)


def tiny_state():
    return tiny_model_builder().state_dict()


class TestViperFacade:
    def test_save_then_load(self):
        with Viper() as viper:
            state = tiny_state()
            result = viper.save_weights("m", state, mode=CaptureMode.SYNC)
            loaded = viper.load_weights("m")
            assert loaded.version == result.version
            for key in state:
                np.testing.assert_array_equal(loaded.state[key], state[key])

    def test_context_manager_closes(self):
        viper = Viper()
        with viper:
            pass
        # engine threads are stopped; a new save must fail gracefully or
        # the broker must be closed — check the broker side.
        assert viper.broker.subscriber_count(viper.topic) == 0

    def test_drain_settles_async_saves(self):
        with Viper() as viper:
            viper.save_weights("m", tiny_state(), mode=CaptureMode.ASYNC)
            viper.drain()
            assert viper.load_weights("m").version == 1


class TestDeltaKnobs:
    def test_compression_none_keeps_delta_off(self):
        # Regression: an explicit compression="none" must read as
        # "unset", not as opting the deployment into the delta path.
        with Viper(compression="none") as viper:
            assert not viper.handler.delta.enabled

    def test_compression_codec_enables_delta(self):
        with Viper(compression="zlib") as viper:
            assert viper.handler.delta.enabled

    def test_delta_true_with_compression_none(self):
        with Viper(delta=True, compression="none") as viper:
            assert viper.handler.delta.enabled
            assert viper.handler.delta.config.compression == "none"


class TestConsumer:
    def test_refresh_applies_newest(self):
        with Viper() as viper:
            consumer = viper.consumer(model_builder=tiny_model_builder)
            consumer.subscribe()
            viper.save_weights("m", tiny_state(), mode=CaptureMode.SYNC)
            result = consumer.refresh("m")
            assert result is not None
            assert consumer.current_version == 1

    def test_refresh_when_current_returns_none(self):
        with Viper() as viper:
            consumer = viper.consumer(model_builder=tiny_model_builder)
            viper.save_weights("m", tiny_state(), mode=CaptureMode.SYNC)
            consumer.refresh("m")
            assert consumer.refresh("m") is None

    def test_refresh_without_updates_returns_none(self):
        with Viper() as viper:
            consumer = viper.consumer(model_builder=tiny_model_builder)
            consumer.subscribe()
            assert consumer.refresh() is None

    def test_refresh_discovers_model_from_notification(self):
        with Viper() as viper:
            consumer = viper.consumer(model_builder=tiny_model_builder)
            consumer.subscribe()
            viper.save_weights("m", tiny_state(), mode=CaptureMode.SYNC)
            # No model name passed: it comes from the queued notification.
            result = consumer.refresh()
            assert result is not None and result.model_name == "m"

    def test_skip_intermediate_versions(self):
        with Viper() as viper:
            consumer = viper.consumer(model_builder=tiny_model_builder)
            consumer.subscribe()
            for _ in range(3):
                viper.save_weights("m", tiny_state(), mode=CaptureMode.SYNC)
            consumer.refresh()
            assert consumer.current_version == 3
            assert consumer.updates_applied == 1

    def test_apply_update_rejects_stale(self):
        with Viper() as viper:
            consumer = viper.consumer(model_builder=tiny_model_builder)
            viper.save_weights("m", tiny_state(), mode=CaptureMode.SYNC)
            consumer.apply_update("m")
            with pytest.raises(ServingError):
                consumer.apply_update("m", version=1)

    def test_served_model_reflects_loaded_weights(self):
        with Viper() as viper:
            consumer = viper.consumer(model_builder=tiny_model_builder)
            trained = tiny_model_builder()
            trained.state_dict()  # warm
            state = trained.state_dict()
            state["d/W"][...] = 7.0
            viper.save_weights("m", state, mode=CaptureMode.SYNC)
            consumer.apply_update("m")
            live = consumer.current_model()
            np.testing.assert_allclose(live.state_dict()["d/W"], 7.0)

    def test_double_buffer_spare_rotation(self):
        with Viper() as viper:
            consumer = viper.consumer(model_builder=tiny_model_builder)
            models = set()
            for i in range(4):
                viper.save_weights("m", tiny_state(), mode=CaptureMode.SYNC)
                consumer.apply_update("m")
                models.add(id(consumer.current_model()))
            # Two replicas rotate: at most 2 distinct model objects.
            assert len(models) <= 2

    def test_load_seconds_accumulate(self):
        with Viper() as viper:
            consumer = viper.consumer(model_builder=tiny_model_builder)
            viper.save_weights("m", tiny_state(), mode=CaptureMode.SYNC)
            consumer.apply_update("m")
            assert consumer.load_seconds > 0


class TestProducerView:
    def test_checkpoint_callback_bound(self):
        with Viper() as viper:
            producer = viper.producer()
            cb = producer.checkpoint_callback("nt3", interval=5, warmup_iters=0)
            assert cb.viper is viper
            assert cb.model_name == "nt3"

    def test_producer_save(self):
        with Viper() as viper:
            producer = viper.producer()
            result = producer.save_weights("m", tiny_state(), mode=CaptureMode.SYNC)
            assert result.version == 1
