"""Transfer-strategy timing-law tests: the arithmetic behind Fig. 8/9."""

import pytest

from repro.errors import ConfigurationError
from repro.substrates.cost import GB
from repro.substrates.profiles import POLARIS
from repro.dnn.serialization import H5LikeSerializer, ViperSerializer
from repro.core.transfer.strategies import (
    CaptureMode,
    TransferStrategy,
    compute_timings,
    load_cost_for_location,
)

SER = ViperSerializer()
TC1 = int(4.7 * GB)


def timings(strategy, mode, serializer=SER, nbytes=TC1, ntensors=30):
    return compute_timings(POLARIS, serializer, strategy, mode, nbytes, ntensors)


class TestOrdering:
    @pytest.mark.parametrize("mode", list(CaptureMode))
    def test_gpu_beats_host_beats_pfs(self, mode):
        gpu = timings(TransferStrategy.GPU_TO_GPU, mode).update_latency
        host = timings(TransferStrategy.HOST_TO_HOST, mode).update_latency
        pfs = timings(TransferStrategy.PFS, mode).update_latency
        assert gpu < host < pfs

    @pytest.mark.parametrize("strategy", list(TransferStrategy))
    def test_async_stall_below_sync_stall(self, strategy):
        sync = timings(strategy, CaptureMode.SYNC)
        asyn = timings(strategy, CaptureMode.ASYNC)
        assert asyn.stall.total < sync.stall.total

    @pytest.mark.parametrize("strategy", list(TransferStrategy))
    def test_async_latency_at_least_sync(self, strategy):
        """The paper: async is slightly slower end-to-end (extra copy)."""
        sync = timings(strategy, CaptureMode.SYNC)
        asyn = timings(strategy, CaptureMode.ASYNC)
        assert asyn.update_latency >= sync.update_latency

    def test_sync_has_no_background(self):
        for strategy in TransferStrategy:
            assert timings(strategy, CaptureMode.SYNC).deliver.total == 0.0

    def test_larger_model_costs_more(self):
        small = timings(TransferStrategy.GPU_TO_GPU, CaptureMode.SYNC, nbytes=GB)
        large = timings(TransferStrategy.GPU_TO_GPU, CaptureMode.SYNC, nbytes=4 * GB)
        assert large.update_latency > small.update_latency

    def test_h5py_slower_than_viper_on_pfs(self):
        viper = timings(TransferStrategy.PFS, CaptureMode.SYNC)
        h5 = timings(TransferStrategy.PFS, CaptureMode.SYNC, serializer=H5LikeSerializer())
        assert h5.update_latency > viper.update_latency

    def test_many_tensors_hurt_pfs_most(self):
        few = timings(TransferStrategy.PFS, CaptureMode.SYNC, ntensors=30)
        many = timings(TransferStrategy.PFS, CaptureMode.SYNC, ntensors=120)
        gpu_few = timings(TransferStrategy.GPU_TO_GPU, CaptureMode.SYNC, ntensors=30)
        gpu_many = timings(TransferStrategy.GPU_TO_GPU, CaptureMode.SYNC, ntensors=120)
        assert (many.update_latency - few.update_latency) > (
            gpu_many.update_latency - gpu_few.update_latency
        )


class TestPaperShape:
    """Calibration checks against the paper's Figure 8 numbers (TC1)."""

    def test_baseline_latency_near_8s(self):
        baseline = timings(
            TransferStrategy.PFS, CaptureMode.SYNC, serializer=H5LikeSerializer()
        )
        assert 6.0 < baseline.update_latency < 11.0

    def test_gpu_speedup_factor(self):
        baseline = timings(
            TransferStrategy.PFS, CaptureMode.SYNC, serializer=H5LikeSerializer()
        ).update_latency
        gpu = timings(TransferStrategy.GPU_TO_GPU, CaptureMode.SYNC).update_latency
        assert 7.0 < baseline / gpu < 16.0  # paper: ~9-15x

    def test_host_speedup_factor(self):
        baseline = timings(
            TransferStrategy.PFS, CaptureMode.SYNC, serializer=H5LikeSerializer()
        ).update_latency
        host = timings(TransferStrategy.HOST_TO_HOST, CaptureMode.SYNC).update_latency
        assert 2.5 < baseline / host < 5.5  # paper: ~3-4x

    def test_fig9_stall_ordering(self):
        """GPU(async) ~1s/16ckpts << Host(async) << PFS(sync) ~60s."""
        gpu = timings(TransferStrategy.GPU_TO_GPU, CaptureMode.ASYNC).stall.total
        host = timings(TransferStrategy.HOST_TO_HOST, CaptureMode.ASYNC).stall.total
        pfs = timings(TransferStrategy.PFS, CaptureMode.SYNC).stall.total
        assert 16 * gpu < 2.5          # paper: ~1 s
        assert 16 * host < 16 * pfs
        assert 45 < 16 * pfs < 80      # paper: ~60 s


class TestLoadCosts:
    def test_load_matches_strategy(self):
        for strategy, location in [
            (TransferStrategy.GPU_TO_GPU, "gpu"),
            (TransferStrategy.HOST_TO_HOST, "dram"),
            (TransferStrategy.PFS, "pfs"),
        ]:
            t = timings(strategy, CaptureMode.SYNC)
            load = load_cost_for_location(POLARIS, SER, location, TC1, 30)
            assert load.total == pytest.approx(t.load.total)

    def test_unknown_location_rejected(self):
        with pytest.raises(ConfigurationError):
            load_cost_for_location(POLARIS, SER, "tape", TC1, 30)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            compute_timings(
                POLARIS, SER, TransferStrategy.PFS, CaptureMode.SYNC, -1, 3
            )
        with pytest.raises(ConfigurationError):
            compute_timings(
                POLARIS, SER, TransferStrategy.PFS, CaptureMode.SYNC, 10, 0
            )


class TestPipelinedTimings:
    def _pipe(self, chunk_gb=0.25, lanes=2):
        from repro.core.transfer.pipeline import PipelineConfig
        from repro.substrates.cost import MB

        return PipelineConfig(
            enabled=True, chunk_bytes=int(chunk_gb * 1024 * MB), lanes=lanes
        )

    @pytest.mark.parametrize("strategy", list(TransferStrategy))
    @pytest.mark.parametrize("mode", list(CaptureMode))
    def test_never_slower_than_monolithic(self, strategy, mode):
        mono = timings(strategy, mode)
        piped = compute_timings(
            POLARIS, SER, strategy, mode, TC1, 30, pipeline=self._pipe()
        )
        assert piped.update_latency <= mono.update_latency + 1e-12
        assert piped.stall.total <= mono.stall.total + 1e-12

    @pytest.mark.parametrize("strategy", list(TransferStrategy))
    def test_large_chunks_speed_up_tc1(self, strategy):
        mono = timings(strategy, CaptureMode.SYNC)
        piped = compute_timings(
            POLARIS, SER, strategy, CaptureMode.SYNC, TC1, 30,
            pipeline=self._pipe(),
        )
        assert piped.update_latency < mono.update_latency

    def test_one_chunk_is_exactly_monolithic(self):
        huge = self._pipe(chunk_gb=64.0)  # payload fits in one chunk
        for strategy in TransferStrategy:
            for mode in CaptureMode:
                mono = timings(strategy, mode)
                piped = compute_timings(
                    POLARIS, SER, strategy, mode, TC1, 30, pipeline=huge
                )
                assert piped.update_latency == pytest.approx(mono.update_latency)

    def test_disabled_pipeline_is_identity(self):
        from repro.core.transfer.pipeline import PipelineConfig

        off = PipelineConfig(enabled=False)
        for strategy in TransferStrategy:
            mono = timings(strategy, CaptureMode.SYNC)
            piped = compute_timings(
                POLARIS, SER, strategy, CaptureMode.SYNC, TC1, 30, pipeline=off
            )
            assert piped.update_latency == mono.update_latency

    def test_more_lanes_never_slower(self):
        lat = [
            compute_timings(
                POLARIS, SER, TransferStrategy.HOST_TO_HOST, CaptureMode.SYNC,
                TC1, 30, pipeline=self._pipe(lanes=lanes),
            ).update_latency
            for lanes in (1, 2, 4, 8)
        ]
        assert lat == sorted(lat, reverse=True)

    def test_fig8_ordering_survives_pipelining(self):
        pipe = self._pipe()
        gpu = compute_timings(
            POLARIS, SER, TransferStrategy.GPU_TO_GPU, CaptureMode.SYNC,
            TC1, 30, pipeline=pipe,
        ).update_latency
        host = compute_timings(
            POLARIS, SER, TransferStrategy.HOST_TO_HOST, CaptureMode.SYNC,
            TC1, 30, pipeline=pipe,
        ).update_latency
        pfs = compute_timings(
            POLARIS, SER, TransferStrategy.PFS, CaptureMode.SYNC,
            TC1, 30, pipeline=pipe,
        ).update_latency
        assert gpu < host < pfs


class TestPipelinedPhaseCost:
    def test_breakdown_shape_preserved(self):
        from repro.core.transfer.strategies import pipelined_phase_cost

        mono = timings(TransferStrategy.HOST_TO_HOST, CaptureMode.SYNC)
        pipe = TestPipelinedTimings()._pipe()
        scaled = pipelined_phase_cost(
            mono.stall, POLARIS.infiniband, SER.wire_bytes(TC1), pipe
        )
        assert set(scaled.breakdown()) == set(mono.stall.breakdown())
        ratios = {
            k: scaled.breakdown()[k] / v
            for k, v in mono.stall.breakdown().items()
            if v > 0
        }
        first = next(iter(ratios.values()))
        for r in ratios.values():
            assert r == pytest.approx(first)

    def test_zero_cost_passthrough(self):
        from repro.substrates.cost import Cost
        from repro.core.transfer.strategies import pipelined_phase_cost

        pipe = TestPipelinedTimings()._pipe()
        zero = Cost.zero()
        assert pipelined_phase_cost(
            zero, POLARIS.infiniband, SER.wire_bytes(TC1), pipe
        ).total == 0.0

    def test_pipelined_load_cost_not_slower(self):
        pipe = TestPipelinedTimings()._pipe()
        for location in ("gpu", "dram", "pfs"):
            mono = load_cost_for_location(POLARIS, SER, location, TC1, 30)
            piped = load_cost_for_location(
                POLARIS, SER, location, TC1, 30, pipeline=pipe
            )
            assert piped.total <= mono.total + 1e-12
