"""Transfer-strategy timing-law tests: the arithmetic behind Fig. 8/9."""

import pytest

from repro.errors import ConfigurationError
from repro.substrates.cost import GB
from repro.substrates.profiles import POLARIS
from repro.dnn.serialization import H5LikeSerializer, ViperSerializer
from repro.core.transfer.strategies import (
    CaptureMode,
    TransferStrategy,
    compute_timings,
    load_cost_for_location,
)

SER = ViperSerializer()
TC1 = int(4.7 * GB)


def timings(strategy, mode, serializer=SER, nbytes=TC1, ntensors=30):
    return compute_timings(POLARIS, serializer, strategy, mode, nbytes, ntensors)


class TestOrdering:
    @pytest.mark.parametrize("mode", list(CaptureMode))
    def test_gpu_beats_host_beats_pfs(self, mode):
        gpu = timings(TransferStrategy.GPU_TO_GPU, mode).update_latency
        host = timings(TransferStrategy.HOST_TO_HOST, mode).update_latency
        pfs = timings(TransferStrategy.PFS, mode).update_latency
        assert gpu < host < pfs

    @pytest.mark.parametrize("strategy", list(TransferStrategy))
    def test_async_stall_below_sync_stall(self, strategy):
        sync = timings(strategy, CaptureMode.SYNC)
        asyn = timings(strategy, CaptureMode.ASYNC)
        assert asyn.stall.total < sync.stall.total

    @pytest.mark.parametrize("strategy", list(TransferStrategy))
    def test_async_latency_at_least_sync(self, strategy):
        """The paper: async is slightly slower end-to-end (extra copy)."""
        sync = timings(strategy, CaptureMode.SYNC)
        asyn = timings(strategy, CaptureMode.ASYNC)
        assert asyn.update_latency >= sync.update_latency

    def test_sync_has_no_background(self):
        for strategy in TransferStrategy:
            assert timings(strategy, CaptureMode.SYNC).deliver.total == 0.0

    def test_larger_model_costs_more(self):
        small = timings(TransferStrategy.GPU_TO_GPU, CaptureMode.SYNC, nbytes=GB)
        large = timings(TransferStrategy.GPU_TO_GPU, CaptureMode.SYNC, nbytes=4 * GB)
        assert large.update_latency > small.update_latency

    def test_h5py_slower_than_viper_on_pfs(self):
        viper = timings(TransferStrategy.PFS, CaptureMode.SYNC)
        h5 = timings(TransferStrategy.PFS, CaptureMode.SYNC, serializer=H5LikeSerializer())
        assert h5.update_latency > viper.update_latency

    def test_many_tensors_hurt_pfs_most(self):
        few = timings(TransferStrategy.PFS, CaptureMode.SYNC, ntensors=30)
        many = timings(TransferStrategy.PFS, CaptureMode.SYNC, ntensors=120)
        gpu_few = timings(TransferStrategy.GPU_TO_GPU, CaptureMode.SYNC, ntensors=30)
        gpu_many = timings(TransferStrategy.GPU_TO_GPU, CaptureMode.SYNC, ntensors=120)
        assert (many.update_latency - few.update_latency) > (
            gpu_many.update_latency - gpu_few.update_latency
        )


class TestPaperShape:
    """Calibration checks against the paper's Figure 8 numbers (TC1)."""

    def test_baseline_latency_near_8s(self):
        baseline = timings(
            TransferStrategy.PFS, CaptureMode.SYNC, serializer=H5LikeSerializer()
        )
        assert 6.0 < baseline.update_latency < 11.0

    def test_gpu_speedup_factor(self):
        baseline = timings(
            TransferStrategy.PFS, CaptureMode.SYNC, serializer=H5LikeSerializer()
        ).update_latency
        gpu = timings(TransferStrategy.GPU_TO_GPU, CaptureMode.SYNC).update_latency
        assert 7.0 < baseline / gpu < 16.0  # paper: ~9-15x

    def test_host_speedup_factor(self):
        baseline = timings(
            TransferStrategy.PFS, CaptureMode.SYNC, serializer=H5LikeSerializer()
        ).update_latency
        host = timings(TransferStrategy.HOST_TO_HOST, CaptureMode.SYNC).update_latency
        assert 2.5 < baseline / host < 5.5  # paper: ~3-4x

    def test_fig9_stall_ordering(self):
        """GPU(async) ~1s/16ckpts << Host(async) << PFS(sync) ~60s."""
        gpu = timings(TransferStrategy.GPU_TO_GPU, CaptureMode.ASYNC).stall.total
        host = timings(TransferStrategy.HOST_TO_HOST, CaptureMode.ASYNC).stall.total
        pfs = timings(TransferStrategy.PFS, CaptureMode.SYNC).stall.total
        assert 16 * gpu < 2.5          # paper: ~1 s
        assert 16 * host < 16 * pfs
        assert 45 < 16 * pfs < 80      # paper: ~60 s


class TestLoadCosts:
    def test_load_matches_strategy(self):
        for strategy, location in [
            (TransferStrategy.GPU_TO_GPU, "gpu"),
            (TransferStrategy.HOST_TO_HOST, "dram"),
            (TransferStrategy.PFS, "pfs"),
        ]:
            t = timings(strategy, CaptureMode.SYNC)
            load = load_cost_for_location(POLARIS, SER, location, TC1, 30)
            assert load.total == pytest.approx(t.load.total)

    def test_unknown_location_rejected(self):
        with pytest.raises(ConfigurationError):
            load_cost_for_location(POLARIS, SER, "tape", TC1, 30)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            compute_timings(
                POLARIS, SER, TransferStrategy.PFS, CaptureMode.SYNC, -1, 3
            )
        with pytest.raises(ConfigurationError):
            compute_timings(
                POLARIS, SER, TransferStrategy.PFS, CaptureMode.SYNC, 10, 0
            )
