"""Chunked/pipelined transfer path: Chunker, BufferPool, PipelinedTransfer."""

import time

import numpy as np
import pytest

from repro.errors import ConfigurationError, TransferError
from repro.dnn.serialization import ViperSerializer
from repro.core.transfer.pipeline import (
    BufferPool,
    Chunker,
    PipelineConfig,
    PipelinedTransfer,
    assemble_into,
    serialize_pipelined,
)

RNG = np.random.default_rng(7)


def sample_state():
    return {
        "w": RNG.standard_normal((64, 32)).astype(np.float32),
        "b": RNG.standard_normal(32).astype(np.float32),
    }


class TestPipelineConfig:
    def test_defaults_off(self):
        cfg = PipelineConfig()
        assert not cfg.enabled

    def test_nchunks(self):
        cfg = PipelineConfig(chunk_bytes=100)
        assert cfg.nchunks(0) == 1
        assert cfg.nchunks(1) == 1
        assert cfg.nchunks(100) == 1
        assert cfg.nchunks(101) == 2
        assert cfg.nchunks(1000) == 10

    @pytest.mark.parametrize("kwargs", [{"chunk_bytes": 0}, {"lanes": 0}])
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            PipelineConfig(**kwargs)


class TestChunker:
    def test_split_is_zero_copy_and_exact(self):
        data = bytes(RNG.integers(0, 256, size=1000, dtype=np.uint8))
        chunks = list(Chunker(64).split(data))
        assert all(isinstance(c, memoryview) for c in chunks)
        assert all(len(c) <= 64 for c in chunks)
        assert b"".join(chunks) == data

    def test_split_empty(self):
        assert b"".join(Chunker(8).split(b"")) == b""

    def test_split_pieces_respects_bound_without_copying(self):
        arr = RNG.standard_normal(1000).astype(np.float32)
        pieces = [b"header", memoryview(arr).cast("B"), b"", b"tail"]
        chunks = list(Chunker(512).split_pieces(pieces))
        assert all(len(c) <= 512 for c in chunks)
        joined = b"".join(chunks)
        assert joined == b"header" + arr.tobytes() + b"tail"
        # Mutating the source array shows through: the chunks are views.
        arr[0] += 1.0
        assert b"".join(chunks) != joined

    def test_invalid_chunk_bytes(self):
        with pytest.raises(ConfigurationError):
            Chunker(0)


class TestBufferPool:
    def test_acquire_release_reuses(self):
        pool = BufferPool(max_buffers=2)
        buf = pool.acquire(100)
        assert len(buf) >= 100
        pool.release(buf)
        again = pool.acquire(50)
        assert again is buf
        assert pool.reuses == 1

    def test_grows_instead_of_allocating_second(self):
        pool = BufferPool(max_buffers=2)
        buf = pool.acquire(10)
        pool.release(buf)
        bigger = pool.acquire(1000)
        assert len(bigger) >= 1000
        assert pool.outstanding == 1

    def test_exhaustion_raises(self):
        pool = BufferPool(max_buffers=1)
        pool.acquire(10)
        with pytest.raises(TransferError):
            pool.acquire(10)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            BufferPool().acquire(-1)

    def test_large_then_small_does_not_pin_peak(self):
        # Regression: one giant transfer must not pin its peak footprint
        # for the lifetime of the pool.
        pool = BufferPool(max_buffers=2, max_retain_bytes=4096)
        big = pool.acquire(1 << 20)
        pool.release(big)
        assert pool.shrinks == 1
        assert pool.retained_bytes == 4096
        small = pool.acquire(1024)
        assert small is big  # shrunk in place, still reused
        assert len(small) == 4096
        pool.release(small)
        assert pool.shrinks == 1  # within the cap: no second trim
        assert pool.retained_bytes == 4096

    def test_release_with_live_view_drops_buffer(self):
        # Regression: a live memoryview export pins the bytearray's
        # size, so the shrink-on-release cap must drop the buffer
        # instead of raising BufferError ("Existing exports of data").
        pool = BufferPool(max_buffers=2, max_retain_bytes=4096)
        buf = pool.acquire(1 << 20)
        view = memoryview(buf)
        pool.release(buf)  # must not raise
        assert pool.outstanding == 0
        assert pool.retained_bytes == 0  # dropped, not retained oversized
        assert len(view) == 1 << 20  # the caller's view stays intact
        view.release()
        assert pool.acquire(16) is not buf

    def test_retention_cap_disabled(self):
        pool = BufferPool(max_buffers=1, max_retain_bytes=None)
        buf = pool.acquire(1 << 20)
        pool.release(buf)
        assert pool.shrinks == 0
        assert pool.retained_bytes == 1 << 20

    def test_retention_cap_validated(self):
        with pytest.raises(ConfigurationError):
            BufferPool(max_retain_bytes=0)


class TestPipelinedTransfer:
    def test_results_in_chunk_order(self):
        pipe = PipelinedTransfer(
            [("double", lambda x, i: x * 2), ("tag", lambda x, i: (i, x))],
            lanes=3,
        )
        result = pipe.run([1, 2, 3, 4, 5])
        assert result.nchunks == 5
        assert result.results == ((0, 2), (1, 4), (2, 6), (3, 8), (4, 10))
        assert set(result.stage_seconds) == {"double", "tag"}

    def test_stages_overlap(self):
        # Two stages, each sleeping per chunk: pipelined wall time must be
        # well under the serial sum (2 stages x 6 chunks x 30 ms = 360 ms).
        dt = 0.03
        pipe = PipelinedTransfer(
            [
                ("a", lambda x, i: time.sleep(dt) or x),
                ("b", lambda x, i: time.sleep(dt) or x),
            ],
            lanes=2,
        )
        result = pipe.run(range(6))
        assert result.elapsed < 2 * 6 * dt * 0.8

    def test_error_propagates(self):
        def boom(x, i):
            if i == 2:
                raise ValueError("chunk 2 is cursed")
            return x

        pipe = PipelinedTransfer([("boom", boom)], lanes=2)
        with pytest.raises(ValueError, match="cursed"):
            pipe.run(range(5))

    def test_empty_input(self):
        pipe = PipelinedTransfer([("id", lambda x, i: x)])
        assert pipe.run([]).results == ()

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            PipelinedTransfer([])
        with pytest.raises(ConfigurationError):
            PipelinedTransfer([("s", lambda x, i: x)], lanes=0)


class TestAssembleInto:
    def test_concatenates(self):
        buf = bytearray(10)
        out = assemble_into(buf, [b"ab", b"cde", b""])
        assert bytes(out) == b"abcde"

    def test_overflow_rejected(self):
        with pytest.raises(TransferError):
            assemble_into(bytearray(3), [b"abcd"])


class TestSerializePipelined:
    def test_matches_dumps_exactly(self):
        ser = ViperSerializer()
        state = sample_state()
        cfg = PipelineConfig(enabled=True, chunk_bytes=1024, lanes=2)
        assert bytes(serialize_pipelined(ser, state, cfg)) == ser.dumps(state)

    def test_pool_buffer_recycled(self):
        ser = ViperSerializer()
        state = sample_state()
        cfg = PipelineConfig(enabled=True, chunk_bytes=512, lanes=2)
        pool = BufferPool(max_buffers=2)
        blob1 = serialize_pipelined(ser, state, cfg, pool=pool)
        blob2 = serialize_pipelined(ser, state, cfg, pool=pool)
        assert blob1 == blob2 == ser.dumps(state)
        assert pool.outstanding == 0
        assert pool.reuses >= 1

    def test_pool_blob_larger_than_retain_cap(self):
        # Regression: a blob bigger than max_retain_bytes used to crash
        # at release time — the serialize path still held its memoryview
        # when the pool tried to shrink the buffer.
        ser = ViperSerializer()
        state = sample_state()
        cfg = PipelineConfig(enabled=True, chunk_bytes=512, lanes=2)
        pool = BufferPool(max_buffers=2, max_retain_bytes=64)
        blob = serialize_pipelined(ser, state, cfg, pool=pool)
        assert blob == ser.dumps(state)
        assert pool.outstanding == 0
        assert pool.shrinks == 1
        assert pool.retained_bytes <= 64
