"""Metadata store tests: versioning, CAS, concurrency."""

import threading

import pytest

from repro.errors import MetadataError, StaleVersionError
from repro.core.metadata import MetadataStore, ModelRecord


def rec(version=1, **overrides):
    base = dict(
        model_name="m",
        version=version,
        nbytes=1000,
        location="gpu",
        path=f"m/v{version}",
        ntensors=4,
        created_at=1.5,
        train_iteration=100,
        train_loss=0.5,
    )
    base.update(overrides)
    return ModelRecord(**base)


class TestPublish:
    def test_publish_and_latest(self):
        store = MetadataStore()
        store.publish_version(rec(1))
        latest, cost = store.latest("m")
        assert latest.version == 1
        assert cost.total > 0

    def test_latest_of_unknown_model_is_none(self):
        latest, _cost = MetadataStore().latest("ghost")
        assert latest is None

    def test_latest_pointer_moves_forward(self):
        store = MetadataStore()
        store.publish_version(rec(1))
        store.publish_version(rec(3))
        store.publish_version(rec(2))  # out-of-order arrival
        latest, _ = store.latest("m")
        assert latest.version == 3

    def test_duplicate_version_rejected(self):
        store = MetadataStore()
        store.publish_version(rec(1))
        with pytest.raises(MetadataError):
            store.publish_version(rec(1))

    def test_record_by_version(self):
        store = MetadataStore()
        store.publish_version(rec(1, train_loss=0.9))
        store.publish_version(rec(2, train_loss=0.4))
        record, _ = store.record("m", 1)
        assert record.train_loss == 0.9

    def test_record_missing_raises(self):
        with pytest.raises(MetadataError):
            MetadataStore().record("m", 1)

    def test_versions_sorted(self):
        store = MetadataStore()
        for v in (3, 1, 2):
            store.publish_version(rec(v))
        assert store.versions("m") == [1, 2, 3]

    def test_models_listing(self):
        store = MetadataStore()
        store.publish_version(rec(1, model_name="b"))
        store.publish_version(rec(1, model_name="a"))
        assert store.models() == ("a", "b")

    def test_len(self):
        store = MetadataStore()
        store.publish_version(rec(1))
        store.publish_version(rec(2))
        assert len(store) == 2

    def test_invalid_record(self):
        with pytest.raises(MetadataError):
            rec(-1)
        with pytest.raises(MetadataError):
            rec(1, nbytes=-1)


class TestCompareAndSwap:
    def test_cas_updates_in_place(self):
        store = MetadataStore()
        store.publish_version(rec(1))
        store.compare_and_swap(rec(1, durable=True))
        record, _ = store.record("m", 1)
        assert record.durable

    def test_cas_guard_on_durable(self):
        store = MetadataStore()
        store.publish_version(rec(1, durable=True))
        with pytest.raises(StaleVersionError):
            store.compare_and_swap(rec(1), expected_durable=False)

    def test_cas_missing_record(self):
        with pytest.raises(MetadataError):
            MetadataStore().compare_and_swap(rec(1))


class TestDropAndConcurrency:
    def test_drop_model(self):
        store = MetadataStore()
        store.publish_version(rec(1))
        store.publish_version(rec(2))
        store.publish_version(rec(1, model_name="other"))
        assert store.drop_model("m") == 2
        assert store.latest("m")[0] is None
        assert store.latest("other")[0] is not None

    def test_concurrent_publishes_monotone_latest(self):
        store = MetadataStore()
        errors = []

        def publisher(versions):
            try:
                for v in versions:
                    store.publish_version(rec(v))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=publisher, args=(range(i, 400, 4),))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        latest, _ = store.latest("m")
        assert latest.version == 399
        assert len(store) == 400
