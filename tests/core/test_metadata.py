"""Metadata store tests: versioning, CAS, concurrency."""

import threading

import pytest

from repro.errors import MetadataError, StaleVersionError
from repro.core.metadata import MetadataStore, ModelRecord


def rec(version=1, **overrides):
    base = dict(
        model_name="m",
        version=version,
        nbytes=1000,
        location="gpu",
        path=f"m/v{version}",
        ntensors=4,
        created_at=1.5,
        train_iteration=100,
        train_loss=0.5,
    )
    base.update(overrides)
    return ModelRecord(**base)


class TestPublish:
    def test_publish_and_latest(self):
        store = MetadataStore()
        store.publish_version(rec(1))
        latest, cost = store.latest("m")
        assert latest.version == 1
        assert cost.total > 0

    def test_latest_of_unknown_model_is_none(self):
        latest, _cost = MetadataStore().latest("ghost")
        assert latest is None

    def test_latest_pointer_moves_forward(self):
        store = MetadataStore()
        store.publish_version(rec(1))
        store.publish_version(rec(3))
        store.publish_version(rec(2))  # out-of-order arrival
        latest, _ = store.latest("m")
        assert latest.version == 3

    def test_duplicate_version_rejected(self):
        store = MetadataStore()
        store.publish_version(rec(1))
        with pytest.raises(MetadataError):
            store.publish_version(rec(1))

    def test_record_by_version(self):
        store = MetadataStore()
        store.publish_version(rec(1, train_loss=0.9))
        store.publish_version(rec(2, train_loss=0.4))
        record, _ = store.record("m", 1)
        assert record.train_loss == 0.9

    def test_record_missing_raises(self):
        with pytest.raises(MetadataError):
            MetadataStore().record("m", 1)

    def test_versions_sorted(self):
        store = MetadataStore()
        for v in (3, 1, 2):
            store.publish_version(rec(v))
        assert store.versions("m") == [1, 2, 3]

    def test_models_listing(self):
        store = MetadataStore()
        store.publish_version(rec(1, model_name="b"))
        store.publish_version(rec(1, model_name="a"))
        assert store.models() == ("a", "b")

    def test_len(self):
        store = MetadataStore()
        store.publish_version(rec(1))
        store.publish_version(rec(2))
        assert len(store) == 2

    def test_invalid_record(self):
        with pytest.raises(MetadataError):
            rec(-1)
        with pytest.raises(MetadataError):
            rec(1, nbytes=-1)


class TestCompareAndSwap:
    def test_cas_updates_in_place(self):
        store = MetadataStore()
        store.publish_version(rec(1))
        store.compare_and_swap(rec(1, durable=True))
        record, _ = store.record("m", 1)
        assert record.durable

    def test_cas_guard_on_durable(self):
        store = MetadataStore()
        store.publish_version(rec(1, durable=True))
        with pytest.raises(StaleVersionError):
            store.compare_and_swap(rec(1), expected_durable=False)

    def test_cas_missing_record(self):
        with pytest.raises(MetadataError):
            MetadataStore().compare_and_swap(rec(1))


class TestDropAndConcurrency:
    def test_drop_model(self):
        store = MetadataStore()
        store.publish_version(rec(1))
        store.publish_version(rec(2))
        store.publish_version(rec(1, model_name="other"))
        assert store.drop_model("m") == 2
        assert store.latest("m")[0] is None
        assert store.latest("other")[0] is not None

    def test_concurrent_publishes_monotone_latest(self):
        store = MetadataStore()
        errors = []

        def publisher(versions):
            try:
                for v in versions:
                    store.publish_version(rec(v))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=publisher, args=(range(i, 400, 4),))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        latest, _ = store.latest("m")
        assert latest.version == 399
        assert len(store) == 400


class TestQuarantine:
    def test_latest_skips_quarantined(self):
        store = MetadataStore()
        store.publish_version(rec(1))
        store.publish_version(rec(2))
        store.quarantine_version("m", 2, "loss_regression")
        latest, _ = store.latest("m")
        assert latest.version == 1
        record, _ = store.record("m", 2)
        assert record.quarantined
        assert record.quarantine_reason == "loss_regression"

    def test_all_versions_quarantined_clears_latest(self):
        store = MetadataStore()
        store.publish_version(rec(1))
        store.quarantine_version("m", 1, "integrity")
        assert store.latest("m")[0] is None
        # ...but the model still exists for recovery/GC.
        assert store.models() == ("m",)
        assert store.quarantined_versions("m") == [1]

    def test_quarantine_is_idempotent(self):
        store = MetadataStore()
        store.publish_version(rec(1))
        store.quarantine_version("m", 1, "nan_output")
        store.quarantine_version("m", 1, "loss_regression")
        record, _ = store.record("m", 1)
        assert record.quarantine_reason == "nan_output"  # first verdict wins

    def test_quarantine_unknown_version_raises(self):
        with pytest.raises(MetadataError):
            MetadataStore().quarantine_version("m", 1, "x")

    def test_later_publish_advances_past_quarantine(self):
        store = MetadataStore()
        store.publish_version(rec(1))
        store.publish_version(rec(2))
        store.quarantine_version("m", 2, "loss_regression")
        store.publish_version(rec(3))
        latest, _ = store.latest("m")
        assert latest.version == 3

    def test_cas_cannot_resurrect_quarantined_record(self):
        # The flusher CASes a *pre-quarantine* copy of the record after
        # the rollback landed; the store must keep the quarantine flags.
        store = MetadataStore()
        store.publish_version(rec(1))
        stale_copy = rec(1, durable=True)  # captured before the rollback
        store.quarantine_version("m", 1, "nan_output")
        store.compare_and_swap(stale_copy)
        record, _ = store.record("m", 1)
        assert record.durable                 # the CAS payload applied
        assert record.quarantined             # ...but quarantine stuck
        assert record.quarantine_reason == "nan_output"
        assert store.latest("m")[0] is None

    def test_drop_latest_rewinds_past_quarantined(self):
        store = MetadataStore()
        store.publish_version(rec(1))
        store.publish_version(rec(2))
        store.publish_version(rec(3))
        store.quarantine_version("m", 2, "integrity")
        store.drop_version("m", 3)
        latest, _ = store.latest("m")
        assert latest.version == 1  # not the quarantined v2

    def test_quarantine_round_trips_the_journal_wire_form(self):
        original = rec(1, quarantined=True, quarantine_reason="peer")
        restored = ModelRecord.from_dict(original.to_dict())
        assert restored == original


class TestQuarantineReplay:
    def test_quarantine_op_replay_is_idempotent(self):
        store = MetadataStore()
        store.publish_version(rec(1))
        store.publish_version(rec(2))
        op = {"model_name": "m", "version": 2, "reason": "loss_regression"}
        assert store.apply_journal_op("quarantine", op)
        assert not store.apply_journal_op("quarantine", op)  # second no-op
        assert store.latest("m")[0].version == 1

    def test_quarantine_op_for_missing_record_is_noop(self):
        store = MetadataStore()
        assert not store.apply_journal_op(
            "quarantine", {"model_name": "m", "version": 9, "reason": "x"}
        )

    def test_publish_replay_of_quarantined_record_keeps_latest_back(self):
        store = MetadataStore()
        store.publish_version(rec(1))
        # Replaying a journaled publish whose record carries the flag
        # (post-compaction snapshot entries) must not advance latest.
        data = rec(2, quarantined=True, quarantine_reason="integrity").to_dict()
        assert store.apply_journal_op("publish", data)
        assert store.latest("m")[0].version == 1

    def test_cas_replay_with_quarantine_rewinds_latest(self):
        store = MetadataStore()
        store.publish_version(rec(1))
        store.publish_version(rec(2))
        data = rec(2, quarantined=True, quarantine_reason="nan_output").to_dict()
        assert store.apply_journal_op("cas", data)
        assert store.latest("m")[0].version == 1

    def test_journaled_quarantine_survives_restart(self, tmp_path):
        from repro.resilience.recovery import MetadataJournal

        journal = MetadataJournal(tmp_path / "j")
        store = MetadataStore()
        store.attach_journal(journal)
        store.publish_version(rec(1))
        store.publish_version(rec(2))
        store.quarantine_version("m", 2, "loss_regression")
        journal.close()

        # A fresh process replays the journal into an empty store.
        recovered = MetadataStore()
        replayed = MetadataJournal(tmp_path / "j").replay_into(recovered)
        assert replayed >= 3
        assert recovered.latest("m")[0].version == 1
        record, _ = recovered.record("m", 2)
        assert record.quarantined
        assert record.quarantine_reason == "loss_regression"
