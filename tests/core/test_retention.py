"""Retention-policy and garbage-collection tests."""

import pytest

from repro import CaptureMode, TransferStrategy, Viper
from repro.errors import ConfigurationError, MetadataError
from repro.core.transfer.retention import RetentionPolicy, collect_garbage
from repro.dnn.layers import Dense
from repro.dnn.models import Sequential


def tiny_state():
    return Sequential([Dense(2, name="d")], input_shape=(3,), seed=1).state_dict()


class TestPolicy:
    def test_keeps_latest_k(self):
        policy = RetentionPolicy(keep_latest=3)
        assert policy.retained(range(1, 11)) == {1, 8, 9, 10}

    def test_lineage_root_always_kept(self):
        policy = RetentionPolicy(keep_latest=1)
        assert 1 in policy.retained([1, 2, 3, 4])

    def test_stride_retention(self):
        policy = RetentionPolicy(keep_latest=2, keep_every=5)
        kept = policy.retained(range(1, 13))
        assert {5, 10} <= kept          # every 5th
        assert {11, 12} <= kept         # latest two
        assert 7 not in kept

    def test_fewer_versions_than_k(self):
        policy = RetentionPolicy(keep_latest=10)
        assert policy.retained([1, 2]) == {1, 2}

    def test_empty(self):
        assert RetentionPolicy().retained([]) == set()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetentionPolicy(keep_latest=0)
        with pytest.raises(ConfigurationError):
            RetentionPolicy(keep_every=-1)


class TestGarbageCollection:
    def make_history(self, viper, n=6):
        state = tiny_state()
        for _ in range(n):
            viper.save_weights(
                "m", state,
                mode=CaptureMode.SYNC, strategy=TransferStrategy.GPU_TO_GPU,
                virtual_bytes=1000,
            )
        viper.drain()

    def test_gc_reclaims_pfs_space(self):
        with Viper(flush_history=True) as viper:
            self.make_history(viper, 6)
            before = viper.cluster.pfs.used_bytes
            dropped, reclaimed = collect_garbage(
                viper.metadata, viper.cluster.pfs, "m",
                RetentionPolicy(keep_latest=2),
            )
            assert sorted(dropped) == [2, 3, 4]  # 1 is the root, 5-6 latest
            assert reclaimed > 0
            assert viper.cluster.pfs.used_bytes < before

    def test_latest_survives_and_loads(self):
        with Viper(flush_history=True) as viper:
            self.make_history(viper, 5)
            collect_garbage(
                viper.metadata, viper.cluster.pfs, "m",
                RetentionPolicy(keep_latest=1),
            )
            loaded = viper.load_weights("m")
            assert loaded.version == 5

    def test_dropped_version_unloadable(self):
        with Viper(flush_history=True) as viper:
            self.make_history(viper, 5)
            collect_garbage(
                viper.metadata, viper.cluster.pfs, "m",
                RetentionPolicy(keep_latest=1),
            )
            with pytest.raises(MetadataError):
                viper.load_weights("m", version=3)

    def test_gc_idempotent(self):
        with Viper(flush_history=True) as viper:
            self.make_history(viper, 6)
            policy = RetentionPolicy(keep_latest=2)
            collect_garbage(viper.metadata, viper.cluster.pfs, "m", policy)
            dropped, reclaimed = collect_garbage(
                viper.metadata, viper.cluster.pfs, "m", policy
            )
            assert dropped == [] and reclaimed == 0

    def test_handler_applies_retention_on_drain(self):
        with Viper(
            flush_history=True, retention=RetentionPolicy(keep_latest=2)
        ) as viper:
            self.make_history(viper, 6)
            viper.drain()  # GC runs here
            versions = viper.metadata.versions("m")
            assert versions == [1, 5, 6]  # root + latest two
            assert viper.load_weights("m").version == 6

    def test_drop_version_rewinds_latest(self):
        with Viper() as viper:
            state = tiny_state()
            for _ in range(3):
                viper.save_weights(
                    "m", state, mode=CaptureMode.SYNC,
                    strategy=TransferStrategy.GPU_TO_GPU,
                )
            viper.metadata.drop_version("m", 3)
            latest, _ = viper.metadata.latest("m")
            assert latest.version == 2
