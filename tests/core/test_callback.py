"""Checkpoint callback tests: scheduling modes within model.fit."""

import numpy as np
import pytest

from repro import Viper
from repro.errors import ScheduleError
from repro.core.callback import CheckpointCallback
from repro.core.predictor.cilp import CILParams
from repro.core.predictor.schedules import Schedule
from repro.dnn.layers import Dense
from repro.dnn.losses import MSELoss
from repro.dnn.models import Sequential
from repro.dnn.optimizers import SGD


def make_model():
    model = Sequential([Dense(1, name="d")], input_shape=(2,), seed=2)
    model.compile(SGD(lr=0.05), MSELoss())
    return model


def make_data(n=100):
    rng = np.random.default_rng(1)
    x = rng.standard_normal((n, 2)).astype(np.float32)
    y = (x @ np.array([[1.0], [-1.0]])).astype(np.float32)
    return x, y


class TestIntervalMode:
    def test_checkpoints_at_interval_after_warmup(self):
        with Viper() as viper:
            cb = CheckpointCallback(viper, "m", interval=3, warmup_iters=4)
            model = make_model()
            x, y = make_data(100)  # 10 iterations/epoch @ batch 10
            model.fit(x, y, epochs=2, batch_size=10, callbacks=[cb])
            # warm-up save at 4, then 7, 10, 13, 16, 19
            assert cb.checkpoints_taken == [4, 7, 10, 13, 16, 19]

    def test_no_initial_save(self):
        with Viper() as viper:
            cb = CheckpointCallback(
                viper, "m", interval=5, warmup_iters=5, save_initial=False
            )
            model = make_model()
            x, y = make_data(100)
            model.fit(x, y, epochs=1, batch_size=10, callbacks=[cb])
            assert cb.checkpoints_taken == [10]

    def test_initial_save_at_train_begin_when_no_warmup(self):
        with Viper() as viper:
            cb = CheckpointCallback(viper, "m", interval=5, warmup_iters=0)
            model = make_model()
            x, y = make_data(100)
            model.fit(x, y, epochs=1, batch_size=10, callbacks=[cb])
            assert cb.checkpoints_taken[0] == 0

    def test_stall_seconds_accumulate(self):
        with Viper() as viper:
            cb = CheckpointCallback(
                viper, "m", interval=2, warmup_iters=0,
                virtual_bytes=10**9, virtual_tensors=10,
            )
            model = make_model()
            x, y = make_data(100)
            model.fit(x, y, epochs=1, batch_size=10, callbacks=[cb])
            assert cb.stall_seconds > 0

    def test_losses_tracked_every_iteration(self):
        with Viper() as viper:
            cb = CheckpointCallback(viper, "m", interval=100, warmup_iters=0)
            model = make_model()
            x, y = make_data(100)
            model.fit(x, y, epochs=2, batch_size=10, callbacks=[cb])
            assert len(cb.iteration_losses) == 20


class TestExplicitSchedule:
    def test_follows_given_schedule(self):
        schedule = Schedule("fixed", (6, 9, 15), start_iter=3, end_iter=20)
        with Viper() as viper:
            cb = CheckpointCallback(viper, "m", schedule=schedule, warmup_iters=3)
            model = make_model()
            x, y = make_data(100)
            model.fit(x, y, epochs=2, batch_size=10, callbacks=[cb])
            assert cb.checkpoints_taken == [3, 6, 9, 15]


class TestAlgorithmMode:
    def test_ipp_schedule_computed_at_warmup_end(self):
        params = CILParams(t_train=0.05, t_p=0.02, t_c=0.02, t_infer=0.005)
        with Viper() as viper:
            cb = CheckpointCallback(
                viper,
                "m",
                algorithm="fixed",
                cil_params=params,
                total_iters=40,
                total_inferences=1000,
                warmup_iters=20,
            )
            model = make_model()
            x, y = make_data(200)  # 20 iters/epoch
            model.fit(x, y, epochs=2, batch_size=10, callbacks=[cb])
            assert cb.schedule is not None
            assert cb.schedule.kind == "fixed"
            assert cb.ipp is not None
            # Checkpoints taken beyond the warm-up follow the schedule.
            assert set(cb.checkpoints_taken[1:]).issubset(cb.schedule.iterations)

    def test_greedy_algorithm_mode(self):
        params = CILParams(t_train=0.05, t_p=0.02, t_c=0.02, t_infer=0.005)
        with Viper() as viper:
            cb = CheckpointCallback(
                viper,
                "m",
                algorithm="greedy",
                cil_params=params,
                total_iters=40,
                total_inferences=1000,
                warmup_iters=20,
            )
            model = make_model()
            x, y = make_data(200)
            model.fit(x, y, epochs=2, batch_size=10, callbacks=[cb])
            assert cb.schedule.kind == "greedy"


class TestAdaptiveMode:
    def test_online_adapter_drives_checkpoints(self):
        params = CILParams(t_train=0.05, t_p=0.02, t_c=0.02, t_infer=0.005)
        with Viper() as viper:
            cb = CheckpointCallback(
                viper,
                "m",
                algorithm="adaptive",
                cil_params=params,
                total_iters=100,
                total_inferences=2000,
                warmup_iters=20,
                iters_per_epoch=20,
            )
            model = make_model()
            x, y = make_data(200)  # 20 iters/epoch
            model.fit(x, y, epochs=5, batch_size=10, callbacks=[cb])
            assert cb.adapter is not None
            # warm-up save plus whatever the adapter triggered
            assert cb.checkpoints_taken[0] == 20
            assert cb.checkpoints_taken[1:] == cb.adapter.checkpoints
            assert cb.adapter.refits >= 1

    def test_adaptive_needs_enough_warmup(self):
        params = CILParams(t_train=0.05, t_p=0.02, t_c=0.02, t_infer=0.005)
        with Viper() as viper:
            with pytest.raises(ScheduleError):
                CheckpointCallback(
                    viper, "m",
                    algorithm="adaptive",
                    cil_params=params,
                    total_iters=100,
                    total_inferences=2000,
                    warmup_iters=2,
                )


class TestValidation:
    def test_exactly_one_mode_required(self):
        with Viper() as viper:
            with pytest.raises(ScheduleError):
                CheckpointCallback(viper, "m")  # none
            with pytest.raises(ScheduleError):
                CheckpointCallback(
                    viper, "m", interval=5,
                    schedule=Schedule("epoch", (), start_iter=0, end_iter=1),
                )

    def test_algorithm_mode_needs_parameters(self):
        with Viper() as viper:
            with pytest.raises(ScheduleError):
                CheckpointCallback(viper, "m", algorithm="fixed")

    def test_negative_warmup_rejected(self):
        with Viper() as viper:
            with pytest.raises(ScheduleError):
                CheckpointCallback(viper, "m", interval=5, warmup_iters=-1)
