"""Stats Manager and location-aware load tests."""

import numpy as np
import pytest

from repro import CaptureMode, TransferStrategy, Viper
from repro.errors import ObjectNotFoundError
from repro.core.stats import LOCATION_RANK, StatsManager
from repro.dnn.layers import Dense
from repro.dnn.models import Sequential


def tiny_state():
    return Sequential([Dense(2, name="d")], input_shape=(3,), seed=1).state_dict()


class TestStatsManager:
    def test_rank_order(self):
        stats = StatsManager()
        assert stats.order(("pfs", "gpu", "host_dram")) == (
            "gpu", "host_dram", "pfs",
        )

    def test_unknown_location_ranks_last(self):
        stats = StatsManager()
        assert stats.order(("tape", "pfs")) == ("pfs", "tape")

    def test_counters(self):
        stats = StatsManager()
        stats.record_load("gpu", 100, 0.5)
        stats.record_load("gpu", 200, 0.25)
        stats.record_load("pfs", 50, 1.0, fallback=True)
        stats.record_miss()
        assert stats.loads_from("gpu") == 2
        assert stats.loads_from("pfs") == 1
        assert stats.fallbacks == 1
        assert stats.misses == 1
        snap = stats.snapshot()
        assert snap["gpu"].bytes_loaded == 300
        assert snap["gpu"].seconds == pytest.approx(0.75)

    def test_revert_wire_savings_restores_monolithic_accounting(self):
        # Regression: a PFS failover ships the monolithic blob after the
        # delta savings were optimistically recorded — the revert must
        # leave the counters as if the save had never gone delta.
        stats = StatsManager()
        stats.record_wire(100, 100)
        stats.record_wire(100, 30, saved_dedup=60, saved_compression=10,
                          chunks_total=10, chunks_reused=6, delta=True)
        stats.revert_wire_savings(100, 30, saved_dedup=60,
                                  saved_compression=10,
                                  chunks_total=10, chunks_reused=6)
        snap = stats.snapshot()
        assert snap.bytes_total == 200
        assert snap.bytes_on_wire == 200
        assert snap.bytes_saved_dedup == 0
        assert snap.bytes_saved_compression == 0
        assert snap.delta_chunks_total == 0
        assert snap.delta_chunks_reused == 0
        assert snap.delta_hits == 0

    def test_summary_renders(self):
        stats = StatsManager()
        stats.record_load("gpu", 10, 0.1)
        text = stats.summary()
        assert "gpu" in text and "fallbacks" in text

    def test_rank_table_covers_all_tiers(self):
        assert set(LOCATION_RANK) == {"gpu", "host_dram", "pfs"}

    def test_snapshot_surfaces_fallbacks_and_misses(self):
        stats = StatsManager()
        stats.record_load("gpu", 10, 0.1)
        stats.record_load("pfs", 20, 1.0, fallback=True)
        stats.record_miss()
        snap = stats.snapshot()
        assert snap.fallbacks == 1
        assert snap.misses == 1
        assert set(snap) == {"gpu", "pfs"}
        assert "gpu" in snap

    def test_snapshot_is_a_copy(self):
        stats = StatsManager()
        stats.record_load("gpu", 10, 0.1)
        snap = stats.snapshot()
        stats.record_load("gpu", 10, 0.1)
        assert snap["gpu"].loads == 1
        assert stats.snapshot()["gpu"].loads == 2

    def test_summary_includes_misses(self):
        stats = StatsManager()
        stats.record_miss()
        assert "misses: 1" in stats.summary()

    def test_metrics_registry_wiring(self):
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        stats = StatsManager(metrics=metrics)
        stats.record_load("gpu", 100, 0.5)
        stats.record_load("pfs", 50, 1.0, fallback=True)
        stats.record_miss()
        by_key = {(i.name, i.labels): i for i in metrics.collect()}
        assert by_key[("viper_loads_total", (("location", "gpu"),))].value == 1
        assert by_key[
            ("viper_load_bytes_total", (("location", "gpu"),))
        ].value == 100
        assert by_key[
            ("viper_load_seconds", (("location", "pfs"),))
        ].count == 1
        assert by_key[("viper_load_fallbacks_total", ())].value == 1
        assert by_key[("viper_load_misses_total", ())].value == 1

    def test_default_null_metrics_records_nothing(self):
        stats = StatsManager()
        stats.record_load("gpu", 1, 0.1)
        assert stats.metrics.collect() == ()


class TestLocationAwareLoad:
    def test_load_prefers_memory_replica(self):
        with Viper(flush_history=True) as viper:
            viper.save_weights(
                "m", tiny_state(),
                mode=CaptureMode.SYNC, strategy=TransferStrategy.GPU_TO_GPU,
            )
            viper.drain()
            loaded = viper.load_weights("m")
            # Both gpu and pfs replicas exist; the gpu one is cheaper.
            assert loaded.location == "gpu"
            assert viper.handler.stats.loads_from("gpu") == 1
            assert viper.handler.stats.fallbacks == 0

    def test_fallback_to_pfs_recorded(self):
        with Viper(flush_history=True) as viper:
            viper.save_weights(
                "m", tiny_state(),
                mode=CaptureMode.SYNC, strategy=TransferStrategy.GPU_TO_GPU,
            )
            viper.drain()
            viper.consumer_node.gpu.clear()
            loaded = viper.load_weights("m")
            assert loaded.location == "pfs"
            assert viper.handler.stats.fallbacks == 1

    def test_pfs_load_costs_more_than_memory_load(self):
        with Viper(flush_history=True) as viper:
            viper.save_weights(
                "m", tiny_state(),
                mode=CaptureMode.SYNC, strategy=TransferStrategy.GPU_TO_GPU,
                virtual_bytes=10**9,
            )
            viper.drain()
            fast = viper.load_weights("m")
            viper.consumer_node.gpu.clear()
            slow = viper.load_weights("m")
            assert slow.cost.total > fast.cost.total

    def test_total_loss_of_replicas_raises_and_counts_miss(self):
        with Viper(flush_history=False) as viper:
            viper.save_weights(
                "m", tiny_state(),
                mode=CaptureMode.SYNC, strategy=TransferStrategy.GPU_TO_GPU,
            )
            viper.consumer_node.gpu.clear()
            with pytest.raises(ObjectNotFoundError):
                viper.load_weights("m")
            assert viper.handler.stats.misses == 1
