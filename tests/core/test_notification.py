"""Notification broker tests: pub/sub semantics and latency stamps."""

import threading

import pytest

from repro.errors import NotificationError
from repro.core.notification import PUSH_LATENCY, NotificationBroker


def publish(broker, version=1, topic="t", now=10.0):
    return broker.publish(
        topic,
        model_name="m",
        version=version,
        location="gpu",
        now=now,
        payload={"path": f"m/v{version}"},
    )


class TestPubSub:
    def test_subscriber_receives(self):
        broker = NotificationBroker()
        sub = broker.subscribe("t")
        publish(broker, 1)
        note = sub.get(timeout=1.0)
        assert note.model_name == "m" and note.version == 1

    def test_fanout_to_all_subscribers(self):
        broker = NotificationBroker()
        subs = [broker.subscribe("t") for _ in range(3)]
        publish(broker)
        for sub in subs:
            assert sub.get(timeout=1.0).version == 1

    def test_topic_isolation(self):
        broker = NotificationBroker()
        a = broker.subscribe("a")
        b = broker.subscribe("b")
        publish(broker, topic="a")
        assert a.poll() is not None
        assert b.poll() is None

    def test_publish_without_subscribers_ok(self):
        broker = NotificationBroker()
        note = publish(broker)
        assert note.version == 1
        assert broker.published == 1

    def test_delivery_latency_stamp(self):
        broker = NotificationBroker()
        note = publish(broker, now=5.0)
        assert note.published_at == 5.0
        assert note.deliver_at == pytest.approx(5.0 + PUSH_LATENCY)

    def test_custom_latency(self):
        broker = NotificationBroker(push_latency=0.01)
        note = publish(broker, now=1.0)
        assert note.deliver_at == pytest.approx(1.01)

    def test_push_latency_below_1ms(self):
        """The paper's claim: push beats the 1 ms polling floor."""
        assert PUSH_LATENCY < 0.001

    def test_negative_latency_rejected(self):
        with pytest.raises(NotificationError):
            NotificationBroker(push_latency=-0.1)

    def test_payload_travels(self):
        broker = NotificationBroker()
        sub = broker.subscribe("t")
        publish(broker, 7)
        assert sub.get(timeout=1.0).payload["path"] == "m/v7"


class TestSubscription:
    def test_poll_nonblocking(self):
        broker = NotificationBroker()
        sub = broker.subscribe("t")
        assert sub.poll() is None
        publish(broker)
        assert sub.poll().version == 1
        assert sub.poll() is None

    def test_drain_returns_all_in_order(self):
        broker = NotificationBroker()
        sub = broker.subscribe("t")
        for v in (1, 2, 3):
            publish(broker, v)
        notes = sub.drain()
        assert [n.version for n in notes] == [1, 2, 3]

    def test_callback_fires_on_publish(self):
        broker = NotificationBroker()
        seen = []
        broker.subscribe("t", callback=lambda n: seen.append(n.version))
        publish(broker, 9)
        assert seen == [9]

    def test_get_timeout(self):
        broker = NotificationBroker()
        sub = broker.subscribe("t")
        with pytest.raises(NotificationError):
            sub.get(timeout=0.05)

    def test_delivered_counter(self):
        broker = NotificationBroker()
        sub = broker.subscribe("t")
        publish(broker, 1)
        publish(broker, 2)
        assert sub.delivered == 2

    def test_blocking_get_across_threads(self):
        broker = NotificationBroker()
        sub = broker.subscribe("t")
        got = []

        def waiter():
            got.append(sub.get(timeout=2.0).version)

        t = threading.Thread(target=waiter)
        t.start()
        publish(broker, 4)
        t.join(2.0)
        assert got == [4]


class TestLifecycle:
    def test_unsubscribe_stops_delivery(self):
        broker = NotificationBroker()
        sub = broker.subscribe("t")
        broker.unsubscribe(sub)
        publish(broker)
        assert broker.subscriber_count("t") == 0

    def test_closed_subscription_raises(self):
        broker = NotificationBroker()
        sub = broker.subscribe("t")
        sub.close()
        with pytest.raises(NotificationError):
            sub.get(timeout=0.5)

    def test_broker_close_closes_all(self):
        broker = NotificationBroker()
        sub = broker.subscribe("t")
        broker.close()
        with pytest.raises(NotificationError):
            sub.get(timeout=0.5)
        assert broker.subscriber_count("t") == 0
