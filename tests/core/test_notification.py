"""Notification broker tests: pub/sub semantics and latency stamps."""

import threading

import pytest

from repro.errors import NotificationError
from repro.core.notification import (
    PUSH_LATENCY,
    QUARANTINE_EVENT,
    NotificationBroker,
    is_quarantine,
)


def publish(broker, version=1, topic="t", now=10.0):
    return broker.publish(
        topic,
        model_name="m",
        version=version,
        location="gpu",
        now=now,
        payload={"path": f"m/v{version}"},
    )


class TestPubSub:
    def test_subscriber_receives(self):
        broker = NotificationBroker()
        sub = broker.subscribe("t")
        publish(broker, 1)
        note = sub.get(timeout=1.0)
        assert note.model_name == "m" and note.version == 1

    def test_fanout_to_all_subscribers(self):
        broker = NotificationBroker()
        subs = [broker.subscribe("t") for _ in range(3)]
        publish(broker)
        for sub in subs:
            assert sub.get(timeout=1.0).version == 1

    def test_topic_isolation(self):
        broker = NotificationBroker()
        a = broker.subscribe("a")
        b = broker.subscribe("b")
        publish(broker, topic="a")
        assert a.poll() is not None
        assert b.poll() is None

    def test_publish_without_subscribers_ok(self):
        broker = NotificationBroker()
        note = publish(broker)
        assert note.version == 1
        assert broker.published == 1

    def test_delivery_latency_stamp(self):
        broker = NotificationBroker()
        note = publish(broker, now=5.0)
        assert note.published_at == 5.0
        assert note.deliver_at == pytest.approx(5.0 + PUSH_LATENCY)

    def test_custom_latency(self):
        broker = NotificationBroker(push_latency=0.01)
        note = publish(broker, now=1.0)
        assert note.deliver_at == pytest.approx(1.01)

    def test_push_latency_below_1ms(self):
        """The paper's claim: push beats the 1 ms polling floor."""
        assert PUSH_LATENCY < 0.001

    def test_negative_latency_rejected(self):
        with pytest.raises(NotificationError):
            NotificationBroker(push_latency=-0.1)

    def test_payload_travels(self):
        broker = NotificationBroker()
        sub = broker.subscribe("t")
        publish(broker, 7)
        assert sub.get(timeout=1.0).payload["path"] == "m/v7"


class TestSubscription:
    def test_poll_nonblocking(self):
        broker = NotificationBroker()
        sub = broker.subscribe("t")
        assert sub.poll() is None
        publish(broker)
        assert sub.poll().version == 1
        assert sub.poll() is None

    def test_drain_returns_all_in_order(self):
        broker = NotificationBroker()
        sub = broker.subscribe("t")
        for v in (1, 2, 3):
            publish(broker, v)
        notes = sub.drain()
        assert [n.version for n in notes] == [1, 2, 3]

    def test_callback_fires_on_publish(self):
        broker = NotificationBroker()
        seen = []
        broker.subscribe("t", callback=lambda n: seen.append(n.version))
        publish(broker, 9)
        assert seen == [9]

    def test_get_timeout(self):
        broker = NotificationBroker()
        sub = broker.subscribe("t")
        with pytest.raises(NotificationError):
            sub.get(timeout=0.05)

    def test_delivered_counter(self):
        broker = NotificationBroker()
        sub = broker.subscribe("t")
        publish(broker, 1)
        publish(broker, 2)
        assert sub.delivered == 2

    def test_blocking_get_across_threads(self):
        broker = NotificationBroker()
        sub = broker.subscribe("t")
        got = []

        def waiter():
            got.append(sub.get(timeout=2.0).version)

        t = threading.Thread(target=waiter)
        t.start()
        publish(broker, 4)
        t.join(2.0)
        assert got == [4]


class TestLifecycle:
    def test_unsubscribe_stops_delivery(self):
        broker = NotificationBroker()
        sub = broker.subscribe("t")
        broker.unsubscribe(sub)
        publish(broker)
        assert broker.subscriber_count("t") == 0

    def test_closed_subscription_raises(self):
        broker = NotificationBroker()
        sub = broker.subscribe("t")
        sub.close()
        with pytest.raises(NotificationError):
            sub.get(timeout=0.5)

    def test_broker_close_closes_all(self):
        broker = NotificationBroker()
        sub = broker.subscribe("t")
        broker.close()
        with pytest.raises(NotificationError):
            sub.get(timeout=0.5)
        assert broker.subscriber_count("t") == 0


class TestSequencing:
    def test_seq_is_monotonic_per_topic(self):
        broker = NotificationBroker()
        assert broker.current_seq("t") == 0
        notes = [publish(broker, v) for v in (1, 2, 3)]
        assert [n.seq for n in notes] == [1, 2, 3]
        assert broker.current_seq("t") == 3
        # Topics sequence independently.
        assert publish(broker, 1, topic="other").seq == 1

    def test_retained_is_last_published(self):
        broker = NotificationBroker()
        assert broker.retained("t") is None
        publish(broker, 1)
        publish(broker, 2)
        assert broker.retained("t").version == 2

    def test_consume_tracks_last_seq(self):
        broker = NotificationBroker()
        sub = broker.subscribe("t")
        publish(broker, 1)
        publish(broker, 2)
        sub.get(timeout=1)
        sub.get(timeout=1)
        assert sub.last_seq == 2
        assert sub.gaps == 0
        assert not sub.needs_catchup


class TestBoundedQueue:
    def test_overflow_coalesces_oldest(self):
        broker = NotificationBroker(queue_max=2)
        sub = broker.subscribe("t")
        for v in (1, 2, 3, 4):
            publish(broker, v)
        assert sub.pending == 2
        assert sub.coalesced == 2
        # The survivors are the newest messages — all a latest-model
        # consumer ever wants.
        assert [n.version for n in sub.drain()] == [3, 4]

    def test_gap_detected_at_consume_after_coalesce(self):
        broker = NotificationBroker(queue_max=1)
        sub = broker.subscribe("t")
        publish(broker, 1)
        sub.get(timeout=1)           # last_seq = 1
        publish(broker, 2)
        publish(broker, 3)           # coalesces away seq 2
        note = sub.get(timeout=1)
        assert note.seq == 3
        assert sub.gaps == 1
        assert sub.needs_catchup


class TestResubscribe:
    def test_matching_seq_needs_no_catchup(self):
        broker = NotificationBroker()
        publish(broker, 1)
        sub = broker.resubscribe("t", since=1)
        assert not sub.needs_catchup
        assert sub.gaps == 0
        # Nothing newer than `since` exists, so nothing is re-delivered.
        assert sub.pending == 0

    def test_missed_publishes_flag_catchup_and_redeliver_retained(self):
        broker = NotificationBroker()
        publish(broker, 1)
        publish(broker, 2)
        publish(broker, 3)
        sub = broker.resubscribe("t", since=1)  # consumer died after v1
        assert sub.needs_catchup
        assert sub.gaps == 1
        # The retained (newest) notification arrives without polling.
        note = sub.poll()
        assert note is not None and note.version == 3

    def test_broker_restart_regressed_seq_flags_catchup(self):
        # A fresh broker's counter restarts at 0; a consumer claiming a
        # higher `since` must not trust the push stream blindly.
        broker = NotificationBroker()
        sub = broker.resubscribe("t", since=7)
        assert sub.needs_catchup
        assert sub.last_seq == 0  # reconciled downward, never invented


def publish_quarantine(broker, version, topic="t", now=10.0):
    return broker.publish(
        topic,
        model_name="m",
        version=version,
        location="gpu",
        now=now,
        payload={"event": QUARANTINE_EVENT, "reason": "rollback"},
    )


class TestQuarantineSafeCoalescing:
    """Bounded-queue overflow must never lose a quarantine order."""

    def test_overflow_drops_oldest_ordinary_never_quarantine(self):
        broker = NotificationBroker(queue_max=2)
        sub = broker.subscribe("t")
        publish(broker, 1)
        publish_quarantine(broker, 1)
        publish(broker, 2)           # overflow: v1 (ordinary) is dropped
        notes = sub.drain()
        assert [n.version for n in notes] == [1, 2]
        assert is_quarantine(notes[0])
        assert sub.coalesced == 1

    def test_all_quarantine_queue_exceeds_maxlen(self):
        # When everything queued is a condemnation there is nothing safe
        # to drop: the queue stretches past maxlen rather than lose one.
        broker = NotificationBroker(queue_max=2)
        sub = broker.subscribe("t")
        for v in (1, 2, 3):
            publish_quarantine(broker, v)
        assert sub.pending == 3
        assert sub.coalesced == 0
        assert all(is_quarantine(n) for n in sub.drain())

    def test_ordinary_traffic_still_coalesces_around_quarantine(self):
        broker = NotificationBroker(queue_max=3)
        sub = broker.subscribe("t")
        publish_quarantine(broker, 1)
        for v in (2, 3, 4, 5):
            publish(broker, v)
        notes = sub.drain()
        assert is_quarantine(notes[0])
        # Ordinary survivors are the newest — the coalescing contract.
        assert [n.version for n in notes[1:]] == [4, 5]
        assert sub.coalesced == 2
