"""Incremental (delta) checkpoint tests."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.core.transfer.incremental import (
    apply_delta,
    delta_base_version,
    delta_payload_bytes,
    encode_delta,
    is_delta,
)
from repro.dnn.serialization import ViperSerializer

RNG = np.random.default_rng(31)


def snapshot():
    return {
        "enc/W": RNG.standard_normal((16, 8)).astype(np.float32),
        "enc/b": RNG.standard_normal(8).astype(np.float32),
        "dec/W": RNG.standard_normal((8, 4)).astype(np.float32),
        "dec/b": RNG.standard_normal(4).astype(np.float32),
    }


class TestEncodeApply:
    def test_identical_snapshots_empty_delta(self):
        state = snapshot()
        delta = encode_delta(state, state, base_version=1)
        assert is_delta(delta)
        assert delta_payload_bytes(delta) == 8  # just the version marker
        restored = apply_delta(state, delta)
        for key in state:
            np.testing.assert_array_equal(restored[key], state[key])

    def test_partial_change_roundtrip(self):
        prev = snapshot()
        curr = {k: v.copy() for k, v in prev.items()}
        curr["dec/W"] += 0.5
        curr["dec/b"] += 0.1
        delta = encode_delta(prev, curr, base_version=3)
        restored = apply_delta(prev, delta, expected_base_version=3)
        for key in curr:
            np.testing.assert_array_equal(restored[key], curr[key])

    def test_unchanged_tensors_not_in_delta(self):
        prev = snapshot()
        curr = {k: v.copy() for k, v in prev.items()}
        curr["dec/b"] += 1.0
        delta = encode_delta(prev, curr, base_version=1)
        assert not any("enc/W" in k for k in delta)

    def test_sparse_rows_encoding(self):
        prev = snapshot()
        curr = {k: v.copy() for k, v in prev.items()}
        curr["enc/W"][3] += 1.0  # one row of sixteen
        delta = encode_delta(prev, curr, base_version=1)
        assert "rows_idx/enc/W" in delta
        assert delta["rows_idx/enc/W"].tolist() == [3]
        restored = apply_delta(prev, delta)
        np.testing.assert_array_equal(restored["enc/W"], curr["enc/W"])

    def test_dense_change_ships_whole_tensor(self):
        prev = snapshot()
        curr = {k: v.copy() for k, v in prev.items()}
        curr["enc/W"] += 1.0  # every row changed
        delta = encode_delta(prev, curr, base_version=1)
        assert "full/enc/W" in delta

    def test_delta_smaller_than_full_for_partial_update(self):
        prev = snapshot()
        curr = {k: v.copy() for k, v in prev.items()}
        curr["dec/b"] += 1.0
        full_bytes = sum(int(t.nbytes) for t in curr.values())
        assert delta_payload_bytes(encode_delta(prev, curr, 1)) < 0.2 * full_bytes

    def test_serializes_through_standard_path(self):
        prev = snapshot()
        curr = {k: v.copy() for k, v in prev.items()}
        curr["dec/W"][2] += 1.0
        delta = encode_delta(prev, curr, base_version=7)
        ser = ViperSerializer()
        back = ser.loads(ser.dumps(delta))
        assert is_delta(back)
        assert delta_base_version(back) == 7
        restored = apply_delta(prev, back)
        np.testing.assert_array_equal(restored["dec/W"], curr["dec/W"])

    def test_chained_deltas(self):
        v1 = snapshot()
        v2 = {k: v.copy() for k, v in v1.items()}
        v2["dec/b"] += 1.0
        v3 = {k: v.copy() for k, v in v2.items()}
        v3["dec/W"][0] += 2.0
        d12 = encode_delta(v1, v2, base_version=1)
        d23 = encode_delta(v2, v3, base_version=2)
        restored = apply_delta(apply_delta(v1, d12), d23)
        for key in v3:
            np.testing.assert_array_equal(restored[key], v3[key])


class TestValidation:
    def test_mismatched_tensor_sets(self):
        prev = snapshot()
        curr = dict(list(prev.items())[:-1])
        with pytest.raises(StorageError):
            encode_delta(prev, curr, 1)

    def test_shape_change_rejected(self):
        prev = snapshot()
        curr = {k: v.copy() for k, v in prev.items()}
        curr["dec/b"] = np.zeros(9, dtype=np.float32)
        with pytest.raises(StorageError):
            encode_delta(prev, curr, 1)

    def test_wrong_base_version_rejected(self):
        prev = snapshot()
        curr = {k: v.copy() for k, v in prev.items()}
        curr["dec/b"] += 1.0
        delta = encode_delta(prev, curr, base_version=5)
        with pytest.raises(StorageError):
            apply_delta(prev, delta, expected_base_version=4)

    def test_apply_non_delta_rejected(self):
        with pytest.raises(StorageError):
            apply_delta(snapshot(), snapshot())

    def test_is_delta_on_plain_weights(self):
        assert not is_delta(snapshot())

    def test_invalid_threshold(self):
        state = snapshot()
        with pytest.raises(StorageError):
            encode_delta(state, state, 1, row_fraction_threshold=0.0)


class TestFineTuningScenario:
    def test_frozen_encoder_yields_small_deltas(self):
        """Freeze the PtychoNN encoder; only decoder tensors change."""
        from repro.apps import get_app

        app = get_app("ptychonn")
        model = app.build_model()
        frozen = model.freeze("ptycho_enc")
        assert frozen > 0
        x, y, _xt, _yt = app.dataset(scale=0.02, seed=8)
        before = model.state_dict()
        model.fit(x, y, epochs=1, batch_size=32, seed=0)
        after = model.state_dict()

        delta = encode_delta(before, after, base_version=1)
        full_bytes = sum(int(t.nbytes) for t in after.values())
        assert delta_payload_bytes(delta) < 0.8 * full_bytes
        # Encoder tensors unchanged -> absent from the delta.
        assert not any("ptycho_enc" in key for key in delta)
        restored = apply_delta(before, delta)
        for key in after:
            np.testing.assert_array_equal(restored[key], after[key])
