"""Model Weights Handler: end-to-end save/load over every strategy."""

import numpy as np
import pytest

from repro.errors import MetadataError, TransferError
from repro.substrates.cluster.cluster import make_producer_consumer_pair
from repro.substrates.cost import GB
from repro.substrates.profiles import POLARIS
from repro.core.transfer.handler import ModelWeightsHandler
from repro.core.transfer.selector import TransferSelector
from repro.core.transfer.strategies import CaptureMode, TransferStrategy

RNG = np.random.default_rng(21)


def sample_state():
    return {
        "layer/W": RNG.standard_normal((8, 4)).astype(np.float32),
        "layer/b": RNG.standard_normal(4).astype(np.float32),
    }


@pytest.fixture
def handler():
    cluster, producer, consumer = make_producer_consumer_pair(POLARIS)
    h = ModelWeightsHandler(cluster, producer, consumer, POLARIS)
    yield h
    h.close()


class TestSaveLoad:
    @pytest.mark.parametrize("strategy", list(TransferStrategy))
    @pytest.mark.parametrize("mode", list(CaptureMode))
    def test_roundtrip(self, handler, strategy, mode):
        state = sample_state()
        result = handler.save_weights("m", state, mode=mode, strategy=strategy)
        handler.drain()
        loaded = handler.load_weights("m")
        assert loaded.version == result.version
        for key in state:
            np.testing.assert_array_equal(loaded.state[key], state[key])

    def test_versions_increment(self, handler):
        state = sample_state()
        r1 = handler.save_weights("m", state, mode=CaptureMode.SYNC)
        r2 = handler.save_weights("m", state, mode=CaptureMode.SYNC)
        assert (r1.version, r2.version) == (1, 2)

    def test_load_latest_by_default(self, handler):
        s1, s2 = sample_state(), sample_state()
        handler.save_weights("m", s1, mode=CaptureMode.SYNC)
        handler.save_weights("m", s2, mode=CaptureMode.SYNC)
        loaded = handler.load_weights("m")
        np.testing.assert_array_equal(loaded.state["layer/W"], s2["layer/W"])

    def test_load_specific_version(self, handler):
        s1, s2 = sample_state(), sample_state()
        handler.save_weights("m", s1, mode=CaptureMode.SYNC)
        handler.save_weights("m", s2, mode=CaptureMode.SYNC)
        loaded = handler.load_weights("m", version=1)
        np.testing.assert_array_equal(loaded.state["layer/W"], s1["layer/W"])

    def test_load_unknown_model(self, handler):
        with pytest.raises(MetadataError):
            handler.load_weights("ghost")

    def test_empty_state_rejected(self, handler):
        with pytest.raises(TransferError):
            handler.save_weights("m", {})

    def test_async_stall_smaller_than_sync(self, handler):
        state = sample_state()
        sync = handler.save_weights(
            "a", state, mode=CaptureMode.SYNC,
            strategy=TransferStrategy.HOST_TO_HOST,
            virtual_bytes=int(4.7 * GB), virtual_tensors=30,
        )
        asyn = handler.save_weights(
            "b", state, mode=CaptureMode.ASYNC,
            strategy=TransferStrategy.HOST_TO_HOST,
            virtual_bytes=int(4.7 * GB), virtual_tensors=30,
        )
        handler.drain()
        assert asyn.stall.total < sync.stall.total
        assert asyn.background.total > 0

    def test_virtual_bytes_scale_costs(self, handler):
        state = sample_state()
        small = handler.save_weights(
            "a", state, mode=CaptureMode.SYNC,
            strategy=TransferStrategy.GPU_TO_GPU, virtual_bytes=GB,
        )
        big = handler.save_weights(
            "b", state, mode=CaptureMode.SYNC,
            strategy=TransferStrategy.GPU_TO_GPU, virtual_bytes=4 * GB,
        )
        assert big.update_latency > small.update_latency

    def test_metadata_record_fields(self, handler):
        state = sample_state()
        handler.save_weights(
            "m", state, mode=CaptureMode.SYNC, train_iteration=42, train_loss=0.37
        )
        record, _ = handler.metadata.latest("m")
        assert record.train_iteration == 42
        assert record.train_loss == pytest.approx(0.37)
        assert record.path == "m/v1"

    def test_notification_published(self, handler):
        sub = handler.broker.subscribe(handler.topic)
        handler.save_weights("m", sample_state(), mode=CaptureMode.SYNC)
        note = sub.get(timeout=2.0)
        assert note.model_name == "m" and note.version == 1

    def test_async_notification_after_delivery(self, handler):
        sub = handler.broker.subscribe(handler.topic)
        handler.save_weights("m", sample_state(), mode=CaptureMode.ASYNC)
        note = sub.get(timeout=2.0)
        # By notification time the blob must be loadable.
        loaded = handler.load_weights("m", version=note.version)
        assert loaded.version == 1

    def test_selector_policy_used_when_no_strategy_given(self):
        cluster, producer, consumer = make_producer_consumer_pair(POLARIS)
        handler = ModelWeightsHandler(
            cluster, producer, consumer, POLARIS,
            selector=TransferSelector(forced=TransferStrategy.PFS),
        )
        try:
            result = handler.save_weights("m", sample_state(), mode=CaptureMode.SYNC)
            assert result.strategy is TransferStrategy.PFS
            assert "m/v1" in cluster.pfs
        finally:
            handler.close()

    def test_destination_stores_per_strategy(self, handler):
        state = sample_state()
        handler.save_weights(
            "g", state, mode=CaptureMode.SYNC, strategy=TransferStrategy.GPU_TO_GPU
        )
        handler.save_weights(
            "h", state, mode=CaptureMode.SYNC, strategy=TransferStrategy.HOST_TO_HOST
        )
        handler.save_weights(
            "p", state, mode=CaptureMode.SYNC, strategy=TransferStrategy.PFS
        )
        assert "g/v1" in handler.consumer.gpu
        assert "h/v1" in handler.consumer.dram
        assert "p/v1" in handler.cluster.pfs


class TestFlushHistory:
    def test_memory_checkpoints_flushed_to_pfs(self):
        cluster, producer, consumer = make_producer_consumer_pair(POLARIS)
        handler = ModelWeightsHandler(
            cluster, producer, consumer, POLARIS, flush_history=True
        )
        try:
            handler.save_weights(
                "m", sample_state(), mode=CaptureMode.SYNC,
                strategy=TransferStrategy.GPU_TO_GPU,
            )
            handler.drain()
            assert "m/v1" in cluster.pfs  # durable copy
            record, _ = handler.metadata.latest("m")
            assert record.durable
        finally:
            handler.close()


class TestPipelinedHandler:
    @pytest.fixture
    def pipelined_handler(self):
        from repro.core.transfer.pipeline import PipelineConfig

        cluster, producer, consumer = make_producer_consumer_pair(POLARIS)
        h = ModelWeightsHandler(
            cluster, producer, consumer, POLARIS,
            pipeline=PipelineConfig(enabled=True, chunk_bytes=256, lanes=2),
        )
        yield h
        h.close()

    @pytest.mark.parametrize("strategy", list(TransferStrategy))
    @pytest.mark.parametrize("mode", list(CaptureMode))
    def test_roundtrip(self, pipelined_handler, strategy, mode):
        state = sample_state()
        result = pipelined_handler.save_weights(
            "m", state, mode=mode, strategy=strategy
        )
        pipelined_handler.drain()
        loaded = pipelined_handler.load_weights("m")
        assert loaded.version == result.version
        for key in state:
            np.testing.assert_array_equal(loaded.state[key], state[key])

    def test_tiny_chunks_clamp_to_monolithic(self, handler, pipelined_handler):
        # 256-byte chunks over a 4.7 GB descriptor: per-chunk setup swamps
        # the overlap, so the adaptive law falls back to monolithic time.
        state = sample_state()
        vb = int(4.7 * GB)
        mono = handler.save_weights(
            "m", state, mode=CaptureMode.SYNC,
            strategy=TransferStrategy.HOST_TO_HOST,
            virtual_bytes=vb, virtual_tensors=30,
        )
        piped = pipelined_handler.save_weights(
            "m", state, mode=CaptureMode.SYNC,
            strategy=TransferStrategy.HOST_TO_HOST,
            virtual_bytes=vb, virtual_tensors=30,
        )
        assert piped.update_latency == pytest.approx(mono.update_latency)

    def test_paper_scale_chunks_beat_monolithic(self, handler):
        from repro.core.transfer.pipeline import PipelineConfig

        state = sample_state()
        vb = int(4.7 * GB)
        mono = handler.save_weights(
            "m", state, mode=CaptureMode.SYNC,
            strategy=TransferStrategy.HOST_TO_HOST,
            virtual_bytes=vb, virtual_tensors=30,
        )
        cluster, producer, consumer = make_producer_consumer_pair(POLARIS)
        piped_handler = ModelWeightsHandler(
            cluster, producer, consumer, POLARIS,
            pipeline=PipelineConfig(enabled=True),  # default 256 MB chunks
        )
        try:
            piped = piped_handler.save_weights(
                "m", state, mode=CaptureMode.SYNC,
                strategy=TransferStrategy.HOST_TO_HOST,
                virtual_bytes=vb, virtual_tensors=30,
            )
        finally:
            piped_handler.close()
        assert piped.update_latency < mono.update_latency
