"""Delta wire path: chunk grid, frame codec, manager negotiation."""

import zlib

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    DeltaBaseError,
    IntegrityError,
    StorageError,
)
from repro.dnn.serialization import ViperSerializer
from repro.core.transfer.compression import available_codecs, get_codec
from repro.core.transfer.delta import (
    _HEADER,
    _LITERAL,
    ChunkIndex,
    DeltaConfig,
    DeltaManager,
    DeltaStats,
    chunk_bounds,
    decode_frame,
    encode_frame,
    frame_info,
    is_delta_frame,
)

CHUNK = 256


def make_state(seed, n=4, shape=(32, 16)):
    rng = np.random.default_rng(seed)
    return {
        f"t{i}": rng.standard_normal(shape).astype(np.float32)
        for i in range(n)
    }


def pieces_and_lengths(serializer, state):
    pieces = list(serializer.dump_chunks(state))
    return pieces, [memoryview(p).nbytes for p in pieces]


def encode_against(serializer, base_state, new_state, chunk=CHUNK, codec=None):
    base_blob = serializer.dumps(base_state)
    _, base_lengths = pieces_and_lengths(serializer, base_state)
    index = ChunkIndex(base_blob, chunk, base_lengths)
    pieces, _ = pieces_and_lengths(serializer, new_state)
    frame, stats = encode_frame(index, pieces, chunk, codec)
    return base_blob, frame, stats


class TestChunkBounds:
    def test_grid_restarts_at_piece_boundaries(self):
        assert chunk_bounds([10, 5], 4) == [
            (0, 4), (4, 4), (8, 2), (10, 4), (14, 1)
        ]

    def test_empty_pieces_skipped(self):
        assert chunk_bounds([0, 3, 0], 4) == [(0, 3)]

    def test_exact_multiple(self):
        assert chunk_bounds([8], 4) == [(0, 4), (4, 4)]


class TestChunkIndex:
    def test_lookup_finds_every_chunk(self):
        blob = bytes(range(256)) * 5
        index = ChunkIndex(blob, 100)
        import hashlib

        for offset, length in chunk_bounds([len(blob)], 100):
            d = hashlib.blake2b(
                blob[offset : offset + length], digest_size=16
            ).digest()
            hit = index.lookup(d)
            assert hit is not None
            start, size = hit
            assert blob[start : start + size] == blob[offset : offset + length]

    def test_duplicate_chunks_dedup_to_one_entry(self):
        blob = b"\x00" * 1024
        index = ChunkIndex(blob, 256)
        assert len(index) == 1  # four zero chunks, one digest

    def test_crc_matches_zlib(self):
        blob = b"hello delta"
        assert ChunkIndex(blob, 4).crc == zlib.crc32(blob)


class TestFrameCodec:
    def test_roundtrip_partial_change(self):
        ser = ViperSerializer()
        base = make_state(1)
        new = {k: v.copy() for k, v in base.items()}
        new["t0"] = new["t0"] + 1.0
        base_blob, frame, stats = encode_against(ser, base, new)
        assert is_delta_frame(frame)
        assert decode_frame(frame, base_blob) == ser.dumps(new)
        assert stats.mode == "delta"
        assert stats.chunks_reused > 0
        assert stats.bytes_on_wire == len(frame) < stats.bytes_total

    def test_zero_change_reuses_everything(self):
        ser = ViperSerializer()
        base = make_state(2)
        base_blob, frame, stats = encode_against(ser, base, base)
        assert stats.chunks_reused == stats.chunks_total
        assert stats.bytes_saved_dedup == stats.bytes_total
        assert decode_frame(frame, base_blob) == base_blob

    def test_all_literal_frame_without_base(self):
        ser = ViperSerializer()
        state = make_state(3)
        pieces, _ = pieces_and_lengths(ser, state)
        frame, stats = encode_frame(None, pieces, CHUNK, get_codec("zlib"))
        assert stats.mode == "literal"
        assert stats.chunks_reused == 0
        assert decode_frame(frame, None) == ser.dumps(state)

    def test_incompressible_literals_ship_raw(self):
        # Random float noise barely compresses: every chunk the zlib
        # codec fails to shrink must ship raw (codec id 0), so the frame
        # can never exceed literal bytes + per-op overhead.
        ser = ViperSerializer()
        state = make_state(4, n=2)
        pieces, lengths = pieces_and_lengths(ser, state)
        frame, stats = encode_frame(None, pieces, CHUNK, get_codec("zlib"))
        overhead = _HEADER.size + stats.chunks_total * _LITERAL.size
        assert len(frame) <= sum(lengths) + overhead
        assert decode_frame(frame, None) == ser.dumps(state)

    def test_frame_info_rejects_bad_magic(self):
        with pytest.raises(StorageError):
            frame_info(b"NOPE" + b"\x00" * 64)
        with pytest.raises(StorageError):
            frame_info(b"VP")  # truncated before the magic completes

    def test_frame_info_rejects_unknown_version(self):
        ser = ViperSerializer()
        base = make_state(5)
        _, frame, _ = encode_against(ser, base, base)
        bad = bytearray(frame)
        bad[4] = 99
        with pytest.raises(StorageError):
            frame_info(bytes(bad))

    def test_v2_blob_is_not_a_frame(self):
        ser = ViperSerializer()
        assert not is_delta_frame(ser.dumps(make_state(6)))

    def test_missing_base_raises_base_error(self):
        ser = ViperSerializer()
        base = make_state(7)
        _, frame, _ = encode_against(ser, base, base)
        with pytest.raises(DeltaBaseError):
            decode_frame(frame, None)

    def test_mismatched_base_raises_base_error(self):
        ser = ViperSerializer()
        base = make_state(8)
        _, frame, _ = encode_against(ser, base, base)
        with pytest.raises(DeltaBaseError):
            decode_frame(frame, ser.dumps(make_state(9)))

    def test_corrupt_literal_raises_integrity_error(self):
        ser = ViperSerializer()
        state = make_state(10)
        pieces, _ = pieces_and_lengths(ser, state)
        frame, _ = encode_frame(None, pieces, CHUNK)  # null codec: raw literals
        bad = bytearray(frame)
        bad[_HEADER.size + _LITERAL.size] ^= 0xFF  # first literal payload byte
        with pytest.raises(IntegrityError):
            decode_frame(bytes(bad), None)

    def test_truncated_frame_raises_integrity_error(self):
        ser = ViperSerializer()
        state = make_state(11)
        pieces, _ = pieces_and_lengths(ser, state)
        frame, _ = encode_frame(None, pieces, CHUNK)
        with pytest.raises(IntegrityError):
            decode_frame(frame[: len(frame) // 2], None)

    def test_truncated_literal_op_header_raises_integrity_error(self):
        # Regression: cutting the frame mid-op-header used to escape as
        # struct.error instead of IntegrityError.
        ser = ViperSerializer()
        state = make_state(13)
        pieces, _ = pieces_and_lengths(ser, state)
        frame, _ = encode_frame(None, pieces, CHUNK)
        with pytest.raises(IntegrityError):
            decode_frame(frame[: _HEADER.size + 1], None)

    def test_truncated_reuse_op_header_raises_integrity_error(self):
        ser = ViperSerializer()
        base = make_state(14)
        base_blob, frame, _ = encode_against(ser, base, base)
        with pytest.raises(IntegrityError):
            decode_frame(frame[: _HEADER.size + 1], base_blob)

    def test_lanes_match_serial_encode(self):
        ser = ViperSerializer()
        base = make_state(12)
        new = {k: v + 1.0 for k, v in base.items()}
        base_blob = ser.dumps(base)
        _, base_lengths = pieces_and_lengths(ser, base)
        index = ChunkIndex(base_blob, CHUNK, base_lengths)
        pieces, _ = pieces_and_lengths(ser, new)
        codec = get_codec("zlib")
        serial, _ = encode_frame(index, pieces, CHUNK, codec, lanes=1)
        pieces, _ = pieces_and_lengths(ser, new)
        laned, _ = encode_frame(index, pieces, CHUNK, codec, lanes=3)
        assert serial == laned


class TestDeltaConfig:
    def test_defaults_off(self):
        cfg = DeltaConfig()
        assert not cfg.enabled
        assert cfg.compression == "none"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(chunk_bytes=0),
            dict(full_change_threshold=0.0),
            dict(full_change_threshold=1.5),
            dict(cache_versions=0),
            dict(compression="bogus"),
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            DeltaConfig(**kwargs)

    def test_codec_resolves(self):
        assert "zlib" in available_codecs()
        assert DeltaConfig(compression="zlib").codec().name == "zlib"


class TestDeltaStats:
    def test_ratios(self):
        stats = DeltaStats(
            mode="delta", bytes_total=100, bytes_on_wire=25,
            bytes_reused=80, chunks_total=10, chunks_reused=8,
        )
        assert stats.bytes_saved_dedup == 80
        assert stats.dedup_hit_ratio == 0.8
        assert stats.wire_fraction == 0.25

    def test_empty_is_neutral(self):
        stats = DeltaStats(mode="monolithic", bytes_total=0, bytes_on_wire=0)
        assert stats.dedup_hit_ratio == 0.0
        assert stats.wire_fraction == 1.0


class TestDeltaManager:
    def _manager(self, **kwargs):
        cfg = DeltaConfig(enabled=True, chunk_bytes=CHUNK, **kwargs)
        return DeltaManager(cfg, serializer=ViperSerializer())

    def test_disabled_always_monolithic(self):
        mgr = DeltaManager(DeltaConfig(enabled=False))
        blob = ViperSerializer().dumps(make_state(20))
        frame, stats = mgr.encode_for_save("m", 1, blob)
        assert frame is None and stats.mode == "monolithic"
        assert stats.bytes_on_wire == len(blob)

    def test_no_base_null_codec_monolithic(self):
        mgr = self._manager()
        state = make_state(21)
        blob = ViperSerializer().dumps(state)
        frame, stats = mgr.encode_for_save("m", 1, blob, state=state)
        assert frame is None and stats.mode == "monolithic"

    def test_delta_after_consumer_registers(self):
        ser = ViperSerializer()
        mgr = self._manager()
        v1 = make_state(22)
        b1 = ser.dumps(v1)
        mgr.encode_for_save("m", 1, b1, state=v1)
        mgr.register_loaded("m", 1, b1)
        assert mgr.held_version("m") == 1
        v2 = {k: v.copy() for k, v in v1.items()}
        v2["t0"] = v2["t0"] + 1.0
        b2 = ser.dumps(v2)
        frame, stats = mgr.encode_for_save("m", 2, b2, state=v2)
        assert frame is not None and stats.mode == "delta"
        assert len(frame) < len(b2)
        assert mgr.decode_for_load("m", frame) == b2

    def test_full_change_early_out(self):
        ser = ViperSerializer()
        mgr = self._manager()
        v1 = make_state(23)
        b1 = ser.dumps(v1)
        mgr.encode_for_save("m", 1, b1, state=v1)
        mgr.register_loaded("m", 1, b1)
        v2 = {k: v + 1.0 for k, v in v1.items()}  # every tensor changed
        frame, stats = mgr.encode_for_save("m", 2, ser.dumps(v2), state=v2)
        assert frame is None and stats.mode == "monolithic"

    def test_forget_held_forces_base_error_then_fallback(self):
        ser = ViperSerializer()
        mgr = self._manager()
        v1 = make_state(24)
        b1 = ser.dumps(v1)
        mgr.encode_for_save("m", 1, b1, state=v1)
        mgr.register_loaded("m", 1, b1)
        v2 = {k: v.copy() for k, v in v1.items()}
        v2["t1"] = v2["t1"] * 2.0
        b2 = ser.dumps(v2)
        frame, _ = mgr.encode_for_save("m", 2, b2, state=v2)
        assert frame is not None
        mgr.forget_held("m")  # the consumer restarted
        with pytest.raises(DeltaBaseError):
            mgr.decode_for_load("m", frame)
        assert mgr.full_blob("m", 2) == b2  # producer-retained fallback

    def test_cache_eviction_bounds_retention(self):
        ser = ViperSerializer()
        mgr = self._manager(cache_versions=2)
        state = make_state(25)
        for v in range(1, 5):
            mgr.encode_for_save("m", v, ser.dumps(state), state=state)
        assert mgr.full_blob("m", 1) is None
        assert mgr.full_blob("m", 2) is None
        assert mgr.full_blob("m", 4) is not None

    def test_remember_saved_enables_later_diff(self):
        # A direct-PFS save ships monolithic but still seeds the cache.
        ser = ViperSerializer()
        mgr = self._manager()
        v1 = make_state(26)
        b1 = ser.dumps(v1)
        mgr.remember_saved("m", 1, b1, state=v1)
        mgr.register_loaded("m", 1, b1)
        v2 = {k: v.copy() for k, v in v1.items()}
        v2["t2"] = v2["t2"] + 0.5
        frame, stats = mgr.encode_for_save("m", 2, ser.dumps(v2), state=v2)
        assert frame is not None and stats.chunks_reused > 0


# ---------------------------------------------------------------------------
# Property tests: reconstruct(base, recipe) == original, for any mutation.
# ---------------------------------------------------------------------------
try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the image
    HAVE_HYPOTHESIS = False


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestDeltaProperties:
    @given(
        n=st.integers(1, 6),
        changed=st.sets(st.integers(0, 5)),
        seed=st.integers(0, 2**16),
        chunk=st.sampled_from([64, 256, 4096]),
        codec=st.sampled_from(["none", "zlib"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_reconstruct_equals_original(self, n, changed, seed, chunk, codec):
        # Covers zero-change (empty set), partial, and full mutation.
        ser = ViperSerializer()
        base = make_state(seed, n=n, shape=(8, 8))
        new = {k: v.copy() for k, v in base.items()}
        for i in changed:
            if i < n:
                new[f"t{i}"] = new[f"t{i}"] + float(i + 1)
        base_blob, frame, stats = encode_against(
            ser, base, new, chunk=chunk, codec=get_codec(codec)
        )
        assert decode_frame(frame, base_blob) == ser.dumps(new)
        if not {i for i in changed if i < n}:
            assert stats.chunks_reused == stats.chunks_total

    @given(
        seed=st.integers(0, 2**16),
        dtype=st.sampled_from(["float32", "float64", "int32", "uint8"]),
        rows=st.integers(1, 16),
        cols=st.integers(1, 16),
    )
    @settings(max_examples=30, deadline=None)
    def test_dtype_and_shape_changes_reconstruct(self, seed, dtype, rows, cols):
        # A layer swapped out between versions: its dtype and shape both
        # change, shifting every downstream piece boundary.
        ser = ViperSerializer()
        base = make_state(seed, n=3, shape=(8, 8))
        rng = np.random.default_rng(seed + 1)
        new = {k: v.copy() for k, v in base.items()}
        new["t1"] = (rng.standard_normal((rows, cols)) * 10).astype(dtype)
        base_blob, frame, _ = encode_against(ser, base, new)
        out = decode_frame(frame, base_blob)
        assert out == ser.dumps(new)
        back = ser.loads(out)
        assert back["t1"].dtype == np.dtype(dtype)
        assert back["t1"].shape == (rows, cols)

    @given(seed=st.integers(0, 2**16), burn=st.integers(0, 2**20))
    @settings(max_examples=30, deadline=None)
    def test_corrupt_literal_never_reconstructs(self, seed, burn):
        # Flip any byte of the first literal's payload: the per-chunk
        # digest must catch it — corrupt bytes never come back as a
        # valid blob.
        ser = ViperSerializer()
        state = make_state(seed, n=2, shape=(8, 8))
        pieces = list(ser.dump_chunks(state))
        frame, _ = encode_frame(None, pieces, CHUNK)
        _tag, _codec, _orig, enc_len, _d = _LITERAL.unpack_from(
            frame, _HEADER.size
        )
        bad = bytearray(frame)
        bad[_HEADER.size + _LITERAL.size + (burn % enc_len)] ^= 0xA5
        with pytest.raises(IntegrityError):
            decode_frame(bytes(bad), None)
