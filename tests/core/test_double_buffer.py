"""Double-buffer tests: atomic swap, staleness, thread safety."""

import threading

import pytest

from repro.errors import ServingError
from repro.core.transfer.double_buffer import DoubleBuffer


class TestBasicSwap:
    def test_initial_state(self):
        buf = DoubleBuffer("model-0", version=0)
        snap = buf.acquire()
        assert snap.model == "model-0" and snap.version == 0
        assert buf.swaps == 0

    def test_stage_then_commit(self):
        buf = DoubleBuffer("m0", version=0)
        buf.stage("m1", 1)
        assert buf.staging
        assert buf.acquire().model == "m0"  # readers still on primary
        snap = buf.commit()
        assert snap.model == "m1" and snap.version == 1
        assert buf.swaps == 1
        assert not buf.staging

    def test_update_convenience(self):
        buf = DoubleBuffer("m0", version=0)
        snap = buf.update("m2", 2)
        assert snap.version == 2

    def test_commit_without_stage(self):
        buf = DoubleBuffer("m0")
        with pytest.raises(ServingError):
            buf.commit()

    def test_stale_stage_rejected(self):
        buf = DoubleBuffer("m0", version=5)
        with pytest.raises(ServingError):
            buf.stage("old", 5)
        with pytest.raises(ServingError):
            buf.stage("older", 3)

    def test_stage_must_beat_staged_version(self):
        buf = DoubleBuffer("m0", version=0)
        buf.stage("m2", 2)
        with pytest.raises(ServingError):
            buf.stage("m1", 1)

    def test_newer_stage_replaces_staged(self):
        buf = DoubleBuffer("m0", version=0)
        buf.stage("m1", 1)
        buf.stage("m2", 2)
        assert buf.commit().version == 2

    def test_version_property(self):
        buf = DoubleBuffer("m0", version=3)
        assert buf.version == 3


class TestAtomicity:
    def test_readers_never_see_torn_state(self):
        """Readers observe monotone versions and matching model labels."""
        buf = DoubleBuffer(("model", 0), version=0)
        stop = threading.Event()
        errors = []

        def reader():
            last = -1
            while not stop.is_set():
                snap = buf.acquire()
                label, v = snap.model
                if label != "model" or v != snap.version or snap.version < last:
                    errors.append((snap.model, snap.version, last))
                    return
                last = snap.version

        def writer():
            for v in range(1, 500):
                buf.update(("model", v), v)

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for t in readers:
            t.start()
        writer()
        stop.set()
        for t in readers:
            t.join(2.0)
        assert not errors
        assert buf.version == 499
        assert buf.swaps == 499


class TestCanarySlot:
    def test_stage_and_acquire_canary(self):
        buf = DoubleBuffer("m0", version=0)
        assert buf.acquire_canary() is None
        assert buf.canary_version is None
        buf.stage_canary("m1", 1)
        assert buf.acquire().model == "m0"        # primary untouched
        snap = buf.acquire_canary()
        assert snap.model == "m1" and snap.version == 1
        assert buf.canary_version == 1

    def test_stale_canary_rejected(self):
        buf = DoubleBuffer("m5", version=5)
        with pytest.raises(ServingError):
            buf.stage_canary("m5", 5)
        with pytest.raises(ServingError):
            buf.stage_canary("m4", 4)

    def test_newer_canary_replaces_older(self):
        buf = DoubleBuffer("m0", version=0)
        buf.stage_canary("m1", 1)
        buf.stage_canary("m2", 2)
        assert buf.canary_version == 2
        with pytest.raises(ServingError):
            buf.stage_canary("m1", 1)             # older than staged canary

    def test_promote_canary(self):
        buf = DoubleBuffer("m0", version=0)
        buf.stage_canary("m1", 1)
        displaced = buf.promote_canary()
        assert displaced.model == "m0"
        assert buf.acquire().model == "m1" and buf.version == 1
        assert buf.acquire_canary() is None
        assert buf.swaps == 1
        assert buf.canary_promotions == 1

    def test_promote_without_canary(self):
        buf = DoubleBuffer("m0")
        with pytest.raises(ServingError):
            buf.promote_canary()

    def test_promote_raced_by_newer_commit(self):
        buf = DoubleBuffer("m0", version=0)
        buf.stage_canary("m1", 1)
        buf.update("m2", 2)                       # direct swap races ahead
        with pytest.raises(ServingError):
            buf.promote_canary()
        assert buf.acquire_canary() is None       # obsolete canary dropped
        assert buf.version == 2

    def test_drop_canary(self):
        buf = DoubleBuffer("m0", version=0)
        assert buf.drop_canary() is None
        buf.stage_canary("m1", 1)
        assert buf.drop_canary() == 1
        assert buf.acquire_canary() is None
        assert buf.canary_drops == 1
        assert buf.swaps == 0                     # never went live

    def test_canary_does_not_block_alternate_path(self):
        # The canary slot is independent of stage/commit.
        buf = DoubleBuffer("m0", version=0)
        buf.stage_canary("m1", 1)
        buf.stage("m2", 2)
        assert buf.commit().version == 2
        assert buf.canary_version == 1            # still staged
