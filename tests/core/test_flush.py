"""Background flusher tests: durability and failure injection."""

import pytest

from repro.errors import StorageError
from repro.substrates.memory.storage import TierStore
from repro.substrates.memory.tiers import TierKind, TierSpec
from repro.core.metadata import MetadataStore, ModelRecord
from repro.core.transfer.flush import BackgroundFlusher, FlushJob


def make_pfs():
    spec = TierSpec(
        name="pfs",
        kind=TierKind.PFS,
        capacity_bytes=10**9,
        read_bw=10**6,
        write_bw=10**6,
        per_object_overhead=0.001,
    )
    return TierStore(spec)


def make_job(version=1):
    record = ModelRecord(
        model_name="m",
        version=version,
        nbytes=1000,
        location="gpu",
        path=f"m/v{version}",
        ntensors=3,
    )
    return FlushJob(key=f"m/v{version}", blob=b"checkpoint-bytes", record=record)


class TestFlushing:
    def test_flush_writes_and_marks_durable(self):
        pfs, meta = make_pfs(), MetadataStore()
        meta.publish_version(make_job().record)
        flusher = BackgroundFlusher(pfs, meta).start()
        flusher.submit(make_job())
        flusher.drain()
        assert pfs.get("m/v1")[0] == b"checkpoint-bytes"
        record, _ = meta.record("m", 1)
        assert record.durable
        # The memory copy stays primary; the PFS joins the replica set.
        assert record.location == "gpu"
        assert "pfs" in record.replicas
        assert flusher.flushed_keys == ("m/v1",)
        flusher.stop()

    def test_multiple_jobs_processed_in_order(self):
        pfs, meta = make_pfs(), MetadataStore()
        flusher = BackgroundFlusher(pfs, meta).start()
        for v in (1, 2, 3):
            meta.publish_version(make_job(v).record)
            flusher.submit(make_job(v))
        flusher.drain()
        assert flusher.flushed_keys == ("m/v1", "m/v2", "m/v3")
        flusher.stop()

    def test_background_cost_accumulates(self):
        pfs, meta = make_pfs(), MetadataStore()
        meta.publish_version(make_job().record)
        flusher = BackgroundFlusher(pfs, meta).start()
        flusher.submit(make_job())
        flusher.drain()
        assert flusher.background_cost.total > 0
        flusher.stop()

    def test_submit_before_start_rejected(self):
        flusher = BackgroundFlusher(make_pfs(), MetadataStore())
        with pytest.raises(StorageError):
            flusher.submit(make_job())

    def test_stop_before_start_is_noop(self):
        BackgroundFlusher(make_pfs(), MetadataStore()).stop()


class TestFailureInjection:
    def test_transient_failure_retried(self):
        pfs, meta = make_pfs(), MetadataStore()
        meta.publish_version(make_job().record)
        attempts = []

        def fail_once(job, attempt):
            attempts.append(attempt)
            return attempt == 0

        flusher = BackgroundFlusher(pfs, meta, fail_hook=fail_once).start()
        flusher.submit(make_job())
        flusher.drain()
        assert attempts == [0, 1]
        assert flusher.flushed_keys == ("m/v1",)
        assert flusher.failed_keys == ()
        flusher.stop()

    def test_persistent_failure_recorded(self):
        pfs, meta = make_pfs(), MetadataStore()
        meta.publish_version(make_job().record)
        flusher = BackgroundFlusher(
            pfs, meta, max_retries=1, fail_hook=lambda j, a: True
        ).start()
        flusher.submit(make_job())
        flusher.drain()
        assert flusher.failed_keys == ("m/v1",)
        assert "m/v1" not in pfs
        record, _ = meta.record("m", 1)
        assert not record.durable
        flusher.stop()

    def test_failure_does_not_block_later_jobs(self):
        pfs, meta = make_pfs(), MetadataStore()
        for v in (1, 2):
            meta.publish_version(make_job(v).record)
        flusher = BackgroundFlusher(
            pfs, meta, max_retries=0,
            fail_hook=lambda job, a: job.record.version == 1,
        ).start()
        flusher.submit(make_job(1))
        flusher.submit(make_job(2))
        flusher.drain()
        assert flusher.failed_keys == ("m/v1",)
        assert flusher.flushed_keys == ("m/v2",)
        flusher.stop()
