"""Declarative configuration tests."""

import pytest

from repro.errors import ConfigurationError
from repro.config import ViperConfig
from repro.core.transfer.strategies import CaptureMode, TransferStrategy
from repro.dnn.serialization import H5LikeSerializer, ViperSerializer
from repro.substrates.profiles import LAPTOP, POLARIS


class TestViperConfig:
    def test_defaults(self):
        cfg = ViperConfig()
        assert cfg.hardware() is POLARIS
        assert isinstance(cfg.make_serializer(), ViperSerializer)
        assert cfg.capture_mode() is CaptureMode.ASYNC
        assert cfg.transfer_strategy() is None

    def test_laptop_profile(self):
        assert ViperConfig(profile="laptop").hardware() is LAPTOP

    def test_h5_serializer(self):
        assert isinstance(
            ViperConfig(serializer="h5py").make_serializer(), H5LikeSerializer
        )

    def test_sync_mode(self):
        assert ViperConfig(mode="sync").capture_mode() is CaptureMode.SYNC

    def test_strategy_resolution(self):
        assert (
            ViperConfig(strategy="gpu").transfer_strategy()
            is TransferStrategy.GPU_TO_GPU
        )

    def test_roundtrip_via_dict(self):
        cfg = ViperConfig(profile="laptop", strategy="pfs", mode="sync")
        again = ViperConfig.from_dict(cfg.to_dict())
        assert again == cfg

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"profile": "summit"},
            {"serializer": "pickle"},
            {"mode": "turbo"},
            {"strategy": "carrier-pigeon"},
            {"poll_interval": -1.0},
            {"recover": True},                      # requires journal_dir
            {"notify_queue_max": -1},
            {"staleness_deadline": 0.0},
        ],
    )
    def test_invalid_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            ViperConfig(**kwargs)

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            ViperConfig.from_dict({"profil": "polaris"})

    def test_pipeline_defaults_off(self):
        cfg = ViperConfig()
        assert cfg.pipeline is False
        assert cfg.pipeline_config().enabled is False

    def test_pipeline_config_resolution(self):
        cfg = ViperConfig(pipeline=True, pipeline_chunk_bytes=1024, pipeline_lanes=4)
        pipe = cfg.pipeline_config()
        assert pipe.enabled and pipe.chunk_bytes == 1024 and pipe.lanes == 4

    def test_pipeline_roundtrip_via_dict(self):
        cfg = ViperConfig(pipeline=True, pipeline_chunk_bytes=2048, pipeline_lanes=3)
        assert ViperConfig.from_dict(cfg.to_dict()) == cfg

    @pytest.mark.parametrize(
        "kwargs",
        [{"pipeline_chunk_bytes": 0}, {"pipeline_chunk_bytes": -5}, {"pipeline_lanes": 0}],
    )
    def test_pipeline_invalid_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            ViperConfig(**kwargs)
