"""Wall-clock gate: full observability must cost ~nothing on the hot path.

The lineage/freshness/tracer/metrics layers all default to null objects;
arming every one of them at once must keep the live save -> notify ->
load -> serve loop within a few percent of the untraced loop.  This is
the CI ``obs-overhead`` regression gate: a change that puts real work
(string formatting, header parsing, lock contention) on the hot path
fails here before it ships.

Methodology: the same workload runs twice per repeat — once with every
observability object at its NULL default, once fully armed (SpanTracer +
LifecycleLedger + FreshnessTracker + MetricsRegistry, servers polling
and serving between versions).  Min-of-repeats on both sides discards
scheduler noise; the gate compares the minima.  The payload is sized so
serialization dominates and per-event bookkeeping is measurable only if
it regresses badly.  ``VIPER_PERF_QUICK=1`` shrinks it for CI.
"""

import json
import os
import time

import numpy as np
import pytest

from repro import CaptureMode, Viper
from repro.dnn.layers import Dense
from repro.dnn.losses import MSELoss
from repro.dnn.models import Sequential
from repro.dnn.optimizers import SGD
from repro.obs import (
    FreshnessTracker,
    LifecycleLedger,
    MetricsRegistry,
    SpanTracer,
)
from repro.serving.server import InferenceServer
from repro.substrates.cost import MB

QUICK = os.environ.get("VIPER_PERF_QUICK", "") not in ("", "0")

PAYLOAD_BYTES = 4 * MB if QUICK else 16 * MB
VERSIONS = 6 if QUICK else 12
SERVES_PER_VERSION = 4
CONSUMERS = 2
REPEATS = 3 if QUICK else 5

#: Relative gate (the acceptance criterion) plus a small absolute slack
#: so a sub-millisecond baseline cannot fail on scheduler jitter alone.
MAX_RELATIVE_OVERHEAD = 0.05
ABSOLUTE_SLACK_S = 0.010


def _width(total_bytes: int) -> int:
    return max(2, total_bytes // 4)


def make_builder(total_bytes: int):
    """A one-layer model wide enough that its weights ARE the payload."""
    width = _width(total_bytes)

    def builder():
        model = Sequential([Dense(1, name="d")], input_shape=(width,), seed=3)
        model.compile(SGD(0.01), MSELoss())
        return model

    return builder


def build_state(total_bytes: int) -> dict:
    return make_builder(total_bytes)().state_dict()


def run_loop(*, armed: bool) -> float:
    """One full save/notify/load/serve workload; returns wall seconds."""
    if armed:
        kwargs = dict(
            tracer=SpanTracer(),
            metrics=MetricsRegistry(),
            lineage=LifecycleLedger(),
            freshness=FreshnessTracker(),
        )
    else:
        kwargs = {}
    builder = make_builder(PAYLOAD_BYTES)
    state = build_state(PAYLOAD_BYTES)
    x = np.ones((1, _width(PAYLOAD_BYTES)), dtype=np.float32)
    with Viper(**kwargs) as viper:
        servers = []
        for _ in range(CONSUMERS):
            consumer = viper.consumer(model_builder=builder)
            consumer.subscribe()
            servers.append(InferenceServer(consumer, "m", t_infer=0.001))
        # Time only the steady-state save/notify/load/serve loop; model
        # construction and teardown are identical on both sides and only
        # add noise to the comparison.
        t0 = time.perf_counter()
        for v in range(VERSIONS):
            state["d/W"][...] = float(v)
            viper.save_weights("m", state, mode=CaptureMode.SYNC)
            for server in servers:
                server.poll_updates()
                for _ in range(SERVES_PER_VERSION):
                    server.handle(x)
        elapsed = time.perf_counter() - t0
    for server in servers:
        assert server.requests[-1].model_version == VERSIONS
    return elapsed


@pytest.fixture(scope="module")
def overhead_results(results_dir):
    run_loop(armed=False)  # warm up allocators and import machinery
    null_times, armed_times = [], []
    for _ in range(REPEATS):
        null_times.append(run_loop(armed=False))
        armed_times.append(run_loop(armed=True))
    report = {
        "quick": QUICK,
        "payload_bytes": PAYLOAD_BYTES,
        "versions": VERSIONS,
        "consumers": CONSUMERS,
        "null_s": min(null_times),
        "armed_s": min(armed_times),
        "overhead": min(armed_times) / min(null_times) - 1.0,
        "gate_relative": MAX_RELATIVE_OVERHEAD,
        "gate_absolute_s": ABSOLUTE_SLACK_S,
    }
    path = results_dir / "BENCH_obs_overhead.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"\nobs overhead: null {report['null_s'] * 1e3:.1f} ms, "
        f"armed {report['armed_s'] * 1e3:.1f} ms "
        f"({report['overhead'] * 100:+.1f}%)"
    )
    return report


class TestObsOverheadGate:
    def test_within_five_percent(self, overhead_results):
        null_s = overhead_results["null_s"]
        armed_s = overhead_results["armed_s"]
        assert armed_s <= null_s * (1.0 + MAX_RELATIVE_OVERHEAD) + ABSOLUTE_SLACK_S, (
            f"observability overhead {armed_s / null_s - 1.0:+.1%} exceeds "
            f"{MAX_RELATIVE_OVERHEAD:.0%} gate (null {null_s:.3f}s, "
            f"armed {armed_s:.3f}s)"
        )

    def test_armed_run_recorded_everything(self):
        # The gate is meaningless if arming silently recorded nothing.
        ledger = LifecycleLedger()
        fresh = FreshnessTracker()
        builder = make_builder(1 * MB)
        state = build_state(1 * MB)
        with Viper(lineage=ledger, freshness=fresh) as viper:
            consumer = viper.consumer(model_builder=builder)
            consumer.subscribe()
            server = InferenceServer(consumer, "m", t_infer=0.001)
            for v in range(3):
                state["d/W"][...] = float(v)
                viper.save_weights("m", state, mode=CaptureMode.SYNC)
                server.poll_updates()
                server.handle(np.ones((1, _width(1 * MB)), dtype=np.float32))
        for version in ledger.versions("m"):
            assert ledger.complete("m", version), version
        assert fresh.fleet("m")
