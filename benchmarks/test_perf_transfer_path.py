"""Wall-clock microbenchmark: monolithic vs chunked/pipelined transfer.

For each paper application (NT3.A 600 MB, TC1 4.7 GB, PtychoNN 4.5 GB)
we move a real payload through the fabric twice and time it:

- **monolithic** — ``dumps`` (join copy) -> ``send`` (wire snapshot copy)
  -> ``recv`` -> ``loads(copy=True)`` (per-tensor copies); every stage
  serial, four full-payload copies end to end.
- **pipelined** — ``dump_chunks`` iovec -> :class:`Chunker` views ->
  ``scatter_send`` (no wire copy) overlapped with a receiver thread
  doing ``recv_scatter`` into a :class:`BufferPool` buffer (the single
  reassembly copy) -> ``loads(copy=False)`` aliasing that buffer.

The paper model sizes drive the *virtual* descriptors (the simulated
side); the real payload is scaled down so the benchmark finishes in
seconds.  ``VIPER_PERF_QUICK=1`` shrinks it further for the CI smoke job.

Outputs ``benchmarks/results/BENCH_transfer.json`` with both numbers per
model plus the simulated monolithic/pipelined latencies, and gates:

- pipelined wall-clock >= 1.5x faster for the TC1-class payload;
- the simulated law never slower than monolithic anywhere on a grid;
- the Figure 8 shape holds with the pipeline off AND on;
- serializer throughput within 2x of the committed baseline
  (the CI perf-smoke regression gate).
"""

import json
import os
import threading
import time

import numpy as np
import pytest

from repro.analysis.latency import measure_latencies
from repro.apps import get_app
from repro.core.transfer.pipeline import BufferPool, Chunker, PipelineConfig
from repro.core.transfer.strategies import (
    CaptureMode,
    TransferStrategy,
    compute_timings,
)
from repro.dnn.serialization import ViperSerializer
from repro.substrates.cost import GB, MB
from repro.substrates.network.channels import Fabric
from repro.substrates.network.links import LinkKind, LinkSpec
from repro.substrates.profiles import POLARIS

QUICK = os.environ.get("VIPER_PERF_QUICK", "") not in ("", "0")

#: Real bytes moved per measured transfer (virtual descriptors stay at
#: paper scale).  Full mode is sized so copy costs dominate thread set-up;
#: quick mode keeps the CI smoke job under a few seconds.
REAL_PAYLOAD_BYTES = 8 * MB if QUICK else 64 * MB
REPEATS = 2 if QUICK else 3
#: Wall-clock chunks sized for the real payload (not the simulated one).
WALL_CHUNK_BYTES = 1 * MB
WALL_LANES = 2

APPS = ("nt3a", "tc1", "ptychonn")


def build_state(ntensors: int, total_bytes: int) -> dict:
    rng = np.random.default_rng(5)
    per = max(1, total_bytes // ntensors // 4)
    return {
        f"layer{i}/W": rng.standard_normal(per).astype(np.float32)
        for i in range(ntensors)
    }


def make_wall_fabric():
    # Loopback with no modeled sleep: the benchmark times real byte
    # movement, the simulated laws are asserted separately below.
    link = LinkSpec("loop", LinkKind.LOOPBACK, bandwidth=1e15)
    fabric = Fabric(default_link=link)
    return fabric, fabric.endpoint("src"), fabric.endpoint("dst")


def run_monolithic(serializer, state, src, dst) -> float:
    t0 = time.perf_counter()
    blob = serializer.dumps(state)
    src.send("dst", blob)
    msg = dst.recv(timeout=30.0)
    out = serializer.loads(msg.payload, copy=True)
    elapsed = time.perf_counter() - t0
    assert len(out) == len(state)
    return elapsed


def run_pipelined(serializer, state, src, dst, pool) -> float:
    chunker = Chunker(WALL_CHUNK_BYTES)
    loaded = {}
    # Steady state allocates nothing: the pooled buffer absorbs the one
    # reassembly copy and is recycled across repeats.
    buf = pool.acquire(2 * REAL_PAYLOAD_BYTES)

    def receiver():
        msg = dst.recv_scatter(timeout=30.0, into=buf)
        loaded["state"] = serializer.loads(msg.payload, copy=False)

    t0 = time.perf_counter()
    rx = threading.Thread(target=receiver, daemon=True)
    rx.start()
    chunks = chunker.split_pieces(serializer.dump_chunks(state))
    src.scatter_send("dst", list(chunks), lanes=WALL_LANES)
    rx.join(30.0)
    elapsed = time.perf_counter() - t0
    assert not rx.is_alive()
    assert len(loaded["state"]) == len(state)
    pool.release(buf)
    return elapsed


def measure_wall_clock(app_name: str) -> dict:
    app = get_app(app_name)
    serializer = ViperSerializer()
    state = build_state(app.checkpoint_tensors, REAL_PAYLOAD_BYTES)
    pool = BufferPool(max_buffers=2)
    mono, piped = [], []
    for _ in range(REPEATS):
        fabric, src, dst = make_wall_fabric()
        mono.append(run_monolithic(serializer, state, src, dst))
        piped.append(run_pipelined(serializer, state, src, dst, pool))
        fabric.close()
    return {
        "virtual_bytes": app.checkpoint_bytes,
        "tensors": app.checkpoint_tensors,
        "real_payload_bytes": REAL_PAYLOAD_BYTES,
        "monolithic_s": min(mono),
        "pipelined_s": min(piped),
        "speedup": min(mono) / min(piped),
    }


def simulated_latencies(app_name: str, pipeline: PipelineConfig) -> dict:
    app = get_app(app_name)
    out = {}
    for strategy in TransferStrategy:
        mono = compute_timings(
            POLARIS, ViperSerializer(), strategy, CaptureMode.SYNC,
            app.checkpoint_bytes, app.checkpoint_tensors,
        )
        piped = compute_timings(
            POLARIS, ViperSerializer(), strategy, CaptureMode.SYNC,
            app.checkpoint_bytes, app.checkpoint_tensors, pipeline=pipeline,
        )
        out[strategy.value] = {
            "monolithic_s": mono.update_latency,
            "pipelined_s": piped.update_latency,
        }
    return out


@pytest.fixture(scope="module")
def bench_results(results_dir):
    pipeline = PipelineConfig(enabled=True)  # default 256 MB chunks, 2 lanes
    report = {
        "quick": QUICK,
        "wall_clock": {
            "chunk_bytes": WALL_CHUNK_BYTES,
            "lanes": WALL_LANES,
            "models": {name: measure_wall_clock(name) for name in APPS},
        },
        "simulated": {
            "chunk_bytes": pipeline.chunk_bytes,
            "lanes": pipeline.lanes,
            "models": {name: simulated_latencies(name, pipeline) for name in APPS},
        },
    }
    path = results_dir / "BENCH_transfer.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    lines = ["Transfer path: monolithic vs chunked/pipelined (wall-clock)"]
    for name, row in report["wall_clock"]["models"].items():
        lines.append(
            f"{name:10s} mono {row['monolithic_s'] * 1e3:8.1f} ms   "
            f"piped {row['pipelined_s'] * 1e3:8.1f} ms   "
            f"speedup {row['speedup']:.2f}x"
        )
    print("\n" + "\n".join(lines))
    return report


class TestWallClock:
    def test_tc1_speedup(self, bench_results):
        speedup = bench_results["wall_clock"]["models"]["tc1"]["speedup"]
        # The headline acceptance gate: >= 1.5x on the TC1-class payload.
        # The quick CI payload is too small for copy costs to fully
        # dominate scheduling noise, so the smoke gate is looser.
        assert speedup >= (1.1 if QUICK else 1.5)

    def test_all_models_not_slower(self, bench_results):
        for name, row in bench_results["wall_clock"]["models"].items():
            assert row["speedup"] > (0.9 if QUICK else 1.0), name


class TestSimulatedLaw:
    def test_pipelined_never_slower_anywhere(self):
        grid_bytes = (1, int(0.6 * GB), int(4.7 * GB))
        grid_chunks = (1 * MB, 64 * MB, 256 * MB, 8 * GB)
        grid_lanes = (1, 2, 8)
        for link in (POLARIS.nvlink, POLARIS.infiniband, POLARIS.pcie):
            for nbytes in grid_bytes:
                for chunk in grid_chunks:
                    for lanes in grid_lanes:
                        assert link.pipelined_transfer_time(
                            nbytes, chunk, lanes=lanes
                        ) <= link.transfer_time(nbytes) + 1e-12

    def test_report_shows_simulated_gain(self, bench_results):
        for name, per_strategy in bench_results["simulated"]["models"].items():
            for strategy, row in per_strategy.items():
                assert row["pipelined_s"] <= row["monolithic_s"] + 1e-12, (
                    name, strategy,
                )


class TestFig8ShapeWithPipeline:
    @pytest.mark.parametrize("app_name", ("nt3a",) if QUICK else APPS)
    def test_shape_holds_off_and_on(self, app_name):
        for pipeline in (None, PipelineConfig(enabled=True)):
            m = measure_latencies(app_name, pipeline=pipeline)
            assert (
                m["gpu-sync"]
                < m["host-sync"]
                < m["viper-pfs"]
                < m["h5py-baseline"]
            ), f"pipeline={pipeline}"


#: Conservative committed baseline for the CI perf-smoke regression gate:
#: measured ~1.5-2.5 GB/s dumps and ~2-4 GB/s loads on the reference
#: runner; the gate fires only on a >2x drop from these floors.
SERIALIZER_BASELINE_MBPS = {"dumps": 700.0, "loads": 900.0}


class TestSerializerThroughputGate:
    def test_within_2x_of_baseline(self):
        serializer = ViperSerializer()
        state = build_state(24, REAL_PAYLOAD_BYTES)
        nbytes = sum(t.nbytes for t in state.values())
        blob = serializer.dumps(state)  # warm up
        best_dump, best_load = float("inf"), float("inf")
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            blob = serializer.dumps(state)
            best_dump = min(best_dump, time.perf_counter() - t0)
            t0 = time.perf_counter()
            serializer.loads(blob, copy=True)
            best_load = min(best_load, time.perf_counter() - t0)
        dump_mbps = nbytes / best_dump / MB
        load_mbps = nbytes / best_load / MB
        print(
            f"\nserializer throughput: dumps {dump_mbps:.0f} MB/s, "
            f"loads {load_mbps:.0f} MB/s"
        )
        assert dump_mbps >= SERIALIZER_BASELINE_MBPS["dumps"] / 2
        assert load_mbps >= SERIALIZER_BASELINE_MBPS["loads"] / 2
