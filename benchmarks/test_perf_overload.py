"""Overload-protection benchmark + regression gates.

Reuses the chaos harness in ``tests/resilience/test_overload_chaos.py``
— each seed drives one fleet through a dying/stalling subscriber stream,
a 3x open-loop burst against an admission-armed server, and a degraded-
mode round trip — and aggregates the per-seed measurements:

- **admitted-p99** — 99th-percentile completion latency of *admitted*
  requests during the burst; the gate holds it (and the max) within the
  per-request deadline budget, which is the whole point of shedding at
  the door.
- **shed rate** — fraction of the 3x burst refused.  Gated to be
  non-degenerate: a 3x overload must shed something, and must not shed
  everything.
- **broker memory bounds** — peak pending notifications after the dead
  and stalled subscribers are evicted, gated to the configured per-queue
  cap; reclaimed-message and eviction counts are reported alongside.

Outputs ``benchmarks/results/BENCH_overload.json``.  ``VIPER_PERF_QUICK=1``
shrinks the seed sweep for the CI smoke job.
"""

import json
import os

import pytest

from tests.resilience.test_overload_chaos import (
    BUDGET,
    N_BURST,
    QUEUE_MAX,
    run_seed,
)
from repro.resilience.faults import default_seed

QUICK = os.environ.get("VIPER_PERF_QUICK", "") not in ("", "0")

N_BENCH_SEEDS = 2 if QUICK else 6

#: The acceptance gates.
MAX_SHED_RATE = 0.95      # a 3x burst must not starve the server outright
MIN_SHED_RATE = 0.05      # ... and overload protection must actually bite


@pytest.fixture(scope="module")
def bench_results(results_dir):
    base = default_seed()
    rows = [run_seed(base + offset) for offset in range(N_BENCH_SEEDS)]
    for row in rows:
        row["shed_rate"] = row["shed"] / N_BURST
    report = {
        "quick": QUICK,
        "seeds": N_BENCH_SEEDS,
        "burst_requests": N_BURST,
        "deadline_budget_s": BUDGET,
        "queue_max": QUEUE_MAX,
        "admitted_p99_s_worst": max(r["admitted_p99_s"] for r in rows),
        "shed_rate_mean": sum(r["shed_rate"] for r in rows) / len(rows),
        "broker_pending_peak": max(r["broker_pending_peak"] for r in rows),
        "per_seed": rows,
    }
    path = results_dir / "BENCH_overload.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"\nOverload bench ({N_BENCH_SEEDS} seeds): "
        f"admitted p99 {report['admitted_p99_s_worst'] * 1e3:.1f} ms "
        f"(budget {BUDGET * 1e3:.0f} ms), "
        f"shed rate {report['shed_rate_mean']:.0%}, "
        f"broker pending peak {report['broker_pending_peak']}"
    )
    return report


class TestAdmittedLatency:
    def test_p99_within_deadline_budget(self, bench_results):
        assert bench_results["admitted_p99_s_worst"] <= BUDGET
        for row in bench_results["per_seed"]:
            assert row["admitted_max_s"] <= BUDGET + 1e-9, row["seed"]


class TestShedRate:
    def test_overload_sheds_but_never_starves(self, bench_results):
        for row in bench_results["per_seed"]:
            assert MIN_SHED_RATE <= row["shed_rate"] <= MAX_SHED_RATE, (
                f"seed {row['seed']}: shed rate {row['shed_rate']:.0%}"
            )

    def test_every_shed_has_a_reason(self, bench_results):
        for row in bench_results["per_seed"]:
            assert sum(row["shed_by_reason"].values()) == row["shed"]


class TestBrokerMemory:
    def test_pending_bounded_after_evictions(self, bench_results):
        assert bench_results["broker_pending_peak"] <= QUEUE_MAX
        for row in bench_results["per_seed"]:
            assert row["evictions"] == 2
            assert row["reclaimed_messages"] > 0


class TestDegradedMode:
    def test_degraded_seconds_reported(self, bench_results):
        for row in bench_results["per_seed"]:
            assert row["degraded_seconds"] > 0.0
