"""Figure 5: learning-curve fitting on the TC1 warm-up losses.

The paper fits Exp2/Exp3/Lin2/Expd3 to the TC1 warm-up training loss and
selects Exp3 by minimal MSE.  This benchmark reproduces the fit on our
measured TC1 warm-up curve, reports each family's MSE, and asserts the
shape criterion: the decay-to-asymptote families (exp3/expd3/pow3) must
beat the pure straight line, and the fitted curve must track the warm-up
data closely.
"""

import numpy as np
import pytest

from repro.apps import get_app
from repro.core.predictor.curves import PAPER_FAMILIES, fit_all_curves
from repro.core.predictor.tlp import TrainingLossPredictor, smooth_losses
from benchmarks.conftest import emit


@pytest.fixture(scope="module")
def warmup(loss_curves):
    app = get_app("tc1")
    return app, np.asarray(loss_curves["tc1"][: app.warmup_iters])


def test_fig5_family_mse_comparison(warmup, results_dir, benchmark):
    app, losses = warmup
    x = np.arange(1, losses.size + 1, dtype=np.float64)
    y = smooth_losses(losses, 25)

    fitted = benchmark(fit_all_curves, x, y, PAPER_FAMILIES)

    lines = [
        "Figure 5 [tc1 warm-up] learning-curve family fit quality",
        f"{'family':<8}{'MSE':>12}",
        "-" * 20,
    ]
    for name in sorted(fitted, key=lambda n: fitted[n].mse):
        lines.append(f"{name:<8}{fitted[name].mse:>12.3e}")
    best = min(fitted.values(), key=lambda m: m.mse)
    lines.append(f"best family (in-sample MSE): {best.name}")
    lines.append("paper: Exp3 is the best fit for CANDLE-TC1")
    emit(results_dir, "fig5_curve_fitting", "\n".join(lines))

    # Shape criteria: an exponential-to-asymptote family beats the pure
    # exponential-to-zero and is competitive with any family.
    assert fitted["exp3"].mse < fitted["exp2"].mse
    assert best.name in ("exp3", "expd3", "lin2")
    # The winning fit tracks the smoothed warm-up curve tightly.
    assert best.mse < 0.10 * float(np.var(y))


def test_fig5_tlp_selects_asymptotic_family_with_horizon(warmup, results_dir, benchmark):
    app, losses = warmup
    tlp = benchmark(
        lambda: TrainingLossPredictor(smoothing_window=25).fit(
            losses, horizon=app.total_iters
        )
    )
    # With the extrapolation horizon known, the selected family must not
    # predict total collapse by the end of training.
    assert tlp.predict_scalar(app.total_iters) > 0.0


def test_fig5_fit_is_fast_enough_for_online_refits(warmup, benchmark):
    """The Checkpoint Frequency Adapter refits every epoch; a fit over a
    warm-up window must be far cheaper than an epoch of training."""
    app, losses = warmup
    x = np.arange(1, losses.size + 1, dtype=np.float64)

    result = benchmark(fit_all_curves, x, smooth_losses(losses, 25))
    assert result
