"""Figure 6: per-iteration training time and per-request inference time.

The paper validates empirically that both are constant over a run — the
assumption Eq. 1's time-to-iteration mapping rests on.  We measure the
real wall-clock time of our numpy TC1 training iterations and inference
requests and report their coefficient of variation; the *simulated*
constants (t_train, t_infer) used by the DES are constant by
construction, so the interesting check is that the real substrate
behaves the same way.
"""

import time

import numpy as np
import pytest

from repro.apps import get_app
from benchmarks.conftest import emit


@pytest.fixture(scope="module")
def tc1_setup():
    app = get_app("tc1")
    model = app.build_model()
    x, y, xt, _yt = app.dataset(scale=0.25, seed=7)
    return app, model, x, y, xt


def test_fig6_training_time_constancy(tc1_setup, results_dir, benchmark):
    app, model, x, y, _xt = tc1_setup
    batches = [
        (x[i : i + app.batch_size], y[i : i + app.batch_size])
        for i in range(0, 40 * app.batch_size, app.batch_size)
    ]
    times = []
    for xb, yb in batches:
        t0 = time.perf_counter()
        model.train_batch(xb, yb)
        times.append(time.perf_counter() - t0)
    times = np.asarray(times[5:])  # drop warm-up jitter
    cv = times.std() / times.mean()

    lines = [
        "Figure 6 [tc1] per-iteration training time (real numpy substrate)",
        f"iterations measured: {times.size}",
        f"mean: {times.mean() * 1e3:.3f} ms   std: {times.std() * 1e3:.3f} ms   "
        f"CV: {cv:.3f}",
        f"simulated constant used by the DES: {app.timing.t_train * 1e3:.1f} ms",
        "paper: training time per iteration is ~constant (Fig. 6)",
    ]
    emit(results_dir, "fig6_training_time", "\n".join(lines))
    assert cv < 0.6  # constant up to scheduler noise

    benchmark(model.train_batch, *batches[0])


def test_fig6_inference_time_constancy(tc1_setup, results_dir, benchmark):
    app, model, _x, _y, xt = tc1_setup
    requests = [xt[i % xt.shape[0] : i % xt.shape[0] + 1] for i in range(200)]
    times = []
    for req in requests:
        t0 = time.perf_counter()
        model.predict(req)
        times.append(time.perf_counter() - t0)
    # Single-sample predicts run in microseconds; trim scheduler spikes
    # before computing the dispersion (the paper's Fig. 6 plots the
    # steady-state behaviour).
    times = np.sort(np.asarray(times[10:]))
    times = times[len(times) // 10 : -len(times) // 10]
    cv = times.std() / times.mean()

    lines = [
        "Figure 6 [tc1] per-request inference time (real numpy substrate)",
        f"requests measured: {times.size}",
        f"mean: {times.mean() * 1e3:.3f} ms   std: {times.std() * 1e3:.3f} ms   "
        f"CV: {cv:.3f}",
        f"simulated constant used by the DES: {app.timing.t_infer * 1e3:.1f} ms",
        "paper: inference time per request is ~constant (Fig. 6)",
    ]
    emit(results_dir, "fig6_inference_time", "\n".join(lines))
    assert cv < 0.6

    benchmark(model.predict, requests[0])
