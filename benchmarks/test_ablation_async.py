"""Ablation: synchronous vs asynchronous capture (paper §5.3 discussion).

Sync capture finishes each update sooner (no extra staging copy) but
blocks training for the whole delivery; async frees the training loop
after the local snapshot at the cost of slightly higher per-update
latency.  The paper discusses the per-update latency side in Figure 8;
here we quantify the *end-to-end* consequence on TC1: training overhead
shrinks dramatically under async while CIL stays comparable.
"""


from repro.apps import get_app
from repro.core.predictor.schedules import epoch_schedule
from repro.core.transfer.strategies import CaptureMode, TransferStrategy
from repro.workflow.runner import CoupledRunConfig, run_coupled
from benchmarks.conftest import emit


def run(curve, strategy, mode):
    app = get_app("tc1")
    schedule = epoch_schedule(app.warmup_iters, app.total_iters, app.iters_per_epoch)
    return run_coupled(
        CoupledRunConfig(
            app=app, schedule=schedule, loss_curve=curve,
            strategy=strategy, mode=mode,
        )
    )


def test_sync_vs_async_tradeoff(loss_curves, results_dir, benchmark):
    curve = loss_curves["tc1"]
    rows = [
        "Ablation: sync vs async capture (TC1, epoch interval)",
        f"{'strategy':<8}{'mode':<8}{'overhead(s)':>12}{'CIL':>12}",
        "-" * 40,
    ]
    for strategy in (TransferStrategy.GPU_TO_GPU, TransferStrategy.HOST_TO_HOST,
                     TransferStrategy.PFS):
        sync = run(curve, strategy, CaptureMode.SYNC)
        asyn = run(curve, strategy, CaptureMode.ASYNC)
        for label, result in (("sync", sync), ("async", asyn)):
            rows.append(
                f"{strategy.value:<8}{label:<8}"
                f"{result.training_overhead:>12.2f}{result.cil:>12.1f}"
            )
        # Async always reduces the training interruption...
        assert asyn.training_overhead < sync.training_overhead
        # ...without a large CIL regression (<2% on this workload).
        assert asyn.cil < sync.cil * 1.02
    emit(results_dir, "ablation_sync_async", "\n".join(rows))

    benchmark(run, curve, TransferStrategy.GPU_TO_GPU, CaptureMode.ASYNC)


def test_async_benefit_grows_with_slower_tiers(loss_curves, benchmark):
    """The slower the destination, the more async capture buys."""
    curve = loss_curves["tc1"]
    savings = {}
    for strategy in (TransferStrategy.GPU_TO_GPU, TransferStrategy.PFS):
        sync = run(curve, strategy, CaptureMode.SYNC)
        asyn = run(curve, strategy, CaptureMode.ASYNC)
        savings[strategy] = sync.training_overhead - asyn.training_overhead
    assert savings[TransferStrategy.PFS] > savings[TransferStrategy.GPU_TO_GPU]

    benchmark(run, curve, TransferStrategy.PFS, CaptureMode.SYNC)
