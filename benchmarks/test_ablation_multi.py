"""Ablation: multi-consumer fan-out and sharded producers (paper §6).

The paper's future work proposes multi-producer / multi-consumer
patterns with sharded models.  This bench measures the two scaling
dimensions the DESIGN.md extension implements:

- fan-out: per-replica inference quality is unaffected by adding
  consumers (the push channel is one-to-many);
- sharding: the per-producer checkpoint stall shrinks ~1/M with M
  tensor-sharded data-parallel producers.
"""

import pytest

from repro.apps import get_app
from repro.core.predictor.schedules import epoch_schedule
from repro.workflow.multi import run_fanout, run_sharded
from benchmarks.conftest import emit


@pytest.fixture(scope="module")
def setup(loss_curves):
    app = get_app("tc1")
    schedule = epoch_schedule(app.warmup_iters, app.total_iters, app.iters_per_epoch)
    return app, schedule, loss_curves["tc1"]


def test_fanout_scaling(setup, results_dir, benchmark):
    app, schedule, curve = setup
    rows = [
        "Ablation: consumer fan-out (TC1, epoch interval)",
        f"{'consumers':>10}{'total CIL':>13}{'per-replica':>13}{'overhead(s)':>12}",
        "-" * 48,
    ]
    per_replica = None
    for k in (1, 2, 4, 8):
        result = run_fanout(app, schedule, curve, n_consumers=k)
        this_replica = result.total_cil / k
        rows.append(
            f"{k:>10}{result.total_cil:>13.1f}{this_replica:>13.1f}"
            f"{result.training_overhead:>12.2f}"
        )
        if per_replica is None:
            per_replica = this_replica
        # Per-replica quality independent of fan-out (one-to-many push).
        assert this_replica == pytest.approx(per_replica, rel=1e-9)
    emit(results_dir, "ablation_fanout", "\n".join(rows))

    benchmark(run_fanout, app, schedule, curve, n_consumers=4)


def test_sharding_scaling(setup, results_dir, benchmark):
    app, schedule, curve = setup
    rows = [
        "Ablation: producer sharding (TC1, epoch interval)",
        f"{'shards':>8}{'CIL':>13}{'stall overhead(s)':>19}",
        "-" * 40,
    ]
    overheads = []
    for m in (1, 2, 4, 8):
        result = run_sharded(app, schedule, curve, n_shards=m)
        overheads.append(result.training_overhead)
        rows.append(
            f"{m:>8}{result.total_cil:>13.1f}{result.training_overhead:>19.2f}"
        )
    emit(results_dir, "ablation_sharding", "\n".join(rows))

    # Stall overhead strictly decreases with the shard count and the
    # 8-way split recovers most of the 1-way stall.
    assert all(b < a for a, b in zip(overheads, overheads[1:]))
    assert overheads[-1] < 0.5 * overheads[0]

    benchmark(run_sharded, app, schedule, curve, n_shards=4)
