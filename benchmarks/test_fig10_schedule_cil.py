"""Figure 10: cumulative inference loss under the three schedules.

For each app (NT3.B over 25k inferences, TC1 over 50k, PtychoNN over
40k), train the model for real, then replay the measured loss curve
through the coupled simulation under:

- the epoch-boundary baseline;
- the fixed-interval schedule (Algorithm 2);
- the adaptive schedule (greedy rule driven by the Checkpoint Frequency
  Adapter, re-tuned online from observed losses).

Shape criteria: the IPP-driven schedules beat (or match within noise)
the baseline, and the adaptive schedule achieves the lowest CIL of the
three on the headline TC1 workload, as in the paper.
"""

import pytest

from repro.analysis.reporting import format_fig10_table
from repro.apps import get_app
from repro.workflow.experiments import run_schedule_comparison
from benchmarks.conftest import emit


@pytest.fixture(scope="session")
def fig10_results(loss_curves):
    return {
        name: run_schedule_comparison(get_app(name), loss_curves[name])
        for name in ("nt3b", "tc1", "ptychonn")
    }


@pytest.mark.parametrize("app_name", ["nt3b", "tc1", "ptychonn"])
def test_fig10_cil_orderings(app_name, fig10_results, results_dir, benchmark):
    results = fig10_results[app_name]
    benchmark(lambda: {k: r.cil for k, r in results.items()})
    measured = {k: r.cil for k, r in results.items()}
    emit(results_dir, f"fig10_{app_name}", format_fig10_table(app_name, measured))

    baseline = measured["baseline"]
    # IPP schedules do not lose to the baseline beyond noise (0.5%)...
    assert measured["fixed"] <= baseline * 1.005
    assert measured["adaptive"] <= baseline * 1.005
    # ...and the best IPP schedule strictly improves on it.
    assert min(measured["fixed"], measured["adaptive"]) < baseline


def test_fig10_tc1_adaptive_wins(fig10_results, benchmark):
    """The paper's headline TC1 ordering: adaptive < fixed < baseline."""
    measured = benchmark(lambda: {k: r.cil for k, r in fig10_results["tc1"].items()})
    assert measured["adaptive"] < measured["fixed"] < measured["baseline"]


def test_fig10_every_inference_accounted(fig10_results, benchmark):
    benchmark(lambda: None)
    expectations = {"nt3b": 25_000, "tc1": 50_000, "ptychonn": 40_000}
    for app_name, results in fig10_results.items():
        for result in results.values():
            assert result.inferences == expectations[app_name]
            assert result.per_version_inferences.sum() == result.inferences


def test_fig10_runtime(loss_curves, benchmark):
    """Benchmark one full coupled schedule comparison (TC1)."""
    app = get_app("tc1")
    benchmark(run_schedule_comparison, app, loss_curves["tc1"])
