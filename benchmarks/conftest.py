"""Shared benchmark fixtures.

The expensive part of every end-to-end benchmark is training the real
numpy models to obtain genuine loss curves.  A session-scoped fixture
trains each application once and caches the curve on disk
(``benchmarks/.curve_cache.npz``), keyed by app, scale, and seed, so
repeated benchmark runs skip retraining.

Benchmark outputs (the paper-style tables) are written to
``benchmarks/results/*.txt`` in addition to stdout.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.apps import get_app
from repro.workflow.experiments import measured_loss_curve

BENCH_DIR = pathlib.Path(__file__).parent
CACHE_PATH = BENCH_DIR / ".curve_cache.npz"
RESULTS_DIR = BENCH_DIR / "results"

#: Training scale per app: NT3/TC1 train at full paper scale; PtychoNN's
#: 2-D convolutions train at quarter scale and the curve is stretched to
#: the paper-scale iteration axis (see measured_loss_curve).
CURVE_SCALES = {"nt3b": 1.0, "tc1": 1.0, "ptychonn": 0.25}
CURVE_SEED = 3


def _load_cache() -> dict:
    if CACHE_PATH.exists():
        with np.load(CACHE_PATH) as data:
            return {k: data[k] for k in data.files}
    return {}


def _save_cache(cache: dict) -> None:
    np.savez(CACHE_PATH, **cache)


@pytest.fixture(scope="session")
def loss_curves() -> dict:
    """Measured per-iteration loss curves for the Fig. 9/10 apps."""
    cache = _load_cache()
    changed = False
    for name, scale in CURVE_SCALES.items():
        key = f"{name}|{scale}|{CURVE_SEED}"
        if key not in cache:
            app = get_app(name)
            cache[key] = measured_loss_curve(app, scale=scale, seed=CURVE_SEED)
            changed = True
    if changed:
        _save_cache(cache)
    return {
        name: cache[f"{name}|{scale}|{CURVE_SEED}"]
        for name, scale in CURVE_SCALES.items()
    }


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
