"""Figure 8: end-to-end model update latency across transfer strategies.

For each application (NT3.A 600 MB, TC1 4.7 GB, PtychoNN 4.5 GB) we run
the *live* save/load path — real serialization, real byte movement
through the modeled tiers, simulated timing at paper scale — for the six
configurations the paper compares:

    h5py baseline (PFS), Viper-PFS, Viper-Sync/Async x Host/GPU memory

and check the shape criteria: GPU << Host << Viper-PFS < h5py baseline,
GPU ~9-15x over baseline, Host ~3-4x, async slightly slower than sync,
and larger models saving more absolute time.
"""

import pytest

from repro.analysis.latency import measure_latencies
from repro.analysis.reporting import PAPER_FIG8, format_fig8_table
from benchmarks.conftest import emit


@pytest.mark.parametrize("app_name", ["nt3a", "tc1", "ptychonn"])
def test_fig8_update_latency(app_name, results_dir, benchmark):
    measured = measure_latencies(app_name)
    emit(results_dir, f"fig8_{app_name}", format_fig8_table(app_name, measured))

    # --- shape criteria -------------------------------------------------
    assert (
        measured["gpu-sync"]
        < measured["host-sync"]
        < measured["viper-pfs"]
        < measured["h5py-baseline"]
    )
    # Async pays an extra staging copy per update.
    assert measured["gpu-async"] >= measured["gpu-sync"]
    assert measured["host-async"] >= measured["host-sync"]
    # Speedup bands (paper: ~9-15x GPU, ~3-4x Host).
    baseline = measured["h5py-baseline"]
    assert 6.0 < baseline / measured["gpu-sync"] < 18.0
    assert 2.0 < baseline / measured["host-sync"] < 6.0
    # Within a factor ~2 of every published bar.
    for key, paper_value in PAPER_FIG8[app_name].items():
        assert 0.4 < measured[key] / paper_value < 2.5, key

    benchmark(measure_latencies, app_name)


def test_fig8_larger_models_save_more_absolute_time(results_dir, benchmark):
    nt3 = benchmark(measure_latencies, "nt3a")
    tc1 = measure_latencies("tc1")
    saving_small = nt3["h5py-baseline"] - nt3["gpu-async"]
    saving_large = tc1["h5py-baseline"] - tc1["gpu-async"]
    text = (
        "Figure 8 (cross-model): absolute latency saved by GPU-to-GPU\n"
        f"NT3.A (600 MB): {saving_small:.2f}s   TC1 (4.7 GB): {saving_large:.2f}s\n"
        "paper: larger models see more benefit from memory-to-memory transfer"
    )
    emit(results_dir, "fig8_model_size_effect", text)
    assert saving_large > saving_small
