"""Ablation: greedy threshold sensitivity (paper Algorithm 3).

The paper sets the greedy threshold to mean+std of consecutive warm-up
loss deltas.  DESIGN.md calls out the open question of the threshold's
*scale*: our IPP sweeps multipliers of the base rule and keeps the one
with minimal predicted CIL (the same argmin logic Algorithm 2 applies to
intervals).  This bench shows the full sensitivity curve — predicted and
actual CIL per threshold scale — and verifies the sweep lands at (or
near) the empirical optimum.
"""


from repro.apps import get_app
from repro.core.predictor.ipp import InferencePerformancePredictor
from repro.core.predictor.schedules import (
    DEFAULT_THRESHOLD_SCALES,
    greedy_schedule,
    warmup_threshold,
)
from repro.core.transfer.strategies import CaptureMode, TransferStrategy
from repro.workflow.experiments import make_cil_params
from repro.workflow.runner import CoupledRunConfig, run_coupled
from benchmarks.conftest import emit


def test_threshold_scale_sensitivity(loss_curves, results_dir, benchmark):
    app = get_app("tc1")
    curve = loss_curves["tc1"]
    params = make_cil_params(app, TransferStrategy.GPU_TO_GPU)
    ipp = InferencePerformancePredictor(params)
    ipp.observe_warmup(curve[: app.warmup_iters], 1, horizon=app.total_iters)
    fitted = [ipp.loss_pred(i) for i in range(1, app.warmup_iters + 1)]
    base = warmup_threshold(fitted)

    rows = [
        "Ablation: greedy threshold scale (TC1, GPU path)",
        f"base threshold (warm-up mean+std rule): {base:.5f}",
        f"{'scale':>8}{'ckpts':>8}{'predicted CIL':>15}{'actual CIL':>13}",
        "-" * 44,
    ]
    actual_by_scale = {}
    for scale in DEFAULT_THRESHOLD_SCALES:
        schedule = greedy_schedule(
            app.warmup_iters,
            app.total_iters,
            app.total_inferences,
            base * scale,
            ipp.loss_pred,
            params,
        )
        if schedule.num_checkpoints == 0:
            rows.append(f"{scale:>8.1f}{0:>8}{'-':>15}{'-':>13}")
            continue
        result = run_coupled(
            CoupledRunConfig(
                app=app,
                schedule=schedule,
                loss_curve=curve,
                strategy=TransferStrategy.GPU_TO_GPU,
                mode=CaptureMode.ASYNC,
            )
        )
        actual_by_scale[scale] = result.cil
        rows.append(
            f"{scale:>8.1f}{schedule.num_checkpoints:>8}"
            f"{schedule.predicted_cil:>15.1f}{result.cil:>13.1f}"
        )

    # The online Checkpoint Frequency Adapter (threshold re-tuned from
    # observed losses each epoch) for comparison against the static grid.
    from repro.core.predictor.schedules import Schedule
    from repro.workflow.experiments import make_adapter

    adapter = make_adapter(app)
    online = run_coupled(
        CoupledRunConfig(
            app=app,
            schedule=Schedule(
                "adaptive", (), start_iter=app.warmup_iters,
                end_iter=app.total_iters,
            ),
            loss_curve=curve,
            strategy=TransferStrategy.GPU_TO_GPU,
            mode=CaptureMode.ASYNC,
            adapter=adapter,
        )
    )
    rows.append("-" * 44)
    rows.append(
        f"{'online':>8}{online.checkpoints:>8}{'-':>15}{online.cil:>13.1f}"
    )
    emit(results_dir, "ablation_threshold", "\n".join(rows))

    # Online adaptation beats (or matches) the best static threshold.
    assert online.cil <= min(actual_by_scale.values()) * 1.01

    # The swept choice must be close to the best actual scale: within 3%
    # of the empirical optimum across the grid.
    swept = ipp.schedule(
        "greedy", end_iter=app.total_iters, total_infers=app.total_inferences
    )
    swept_result = run_coupled(
        CoupledRunConfig(
            app=app,
            schedule=swept,
            loss_curve=curve,
            strategy=TransferStrategy.GPU_TO_GPU,
            mode=CaptureMode.ASYNC,
        )
    )
    # Predicted CIL is a proxy (the TLP extrapolates); the swept choice
    # must land within 10% of the empirical optimum over the grid and
    # strictly beat the worst grid point.
    best_actual = min(actual_by_scale.values())
    worst_actual = max(actual_by_scale.values())
    assert swept_result.cil <= best_actual * 1.10
    assert swept_result.cil < worst_actual

    benchmark(
        greedy_schedule,
        app.warmup_iters,
        app.total_iters,
        app.total_inferences,
        base,
        ipp.loss_pred,
        params,
    )
