"""Ablation: push notifications vs repository polling (paper §4.4).

Viper's broker delivers update notifications in <1 ms; Triton-style
baselines poll the repository at a fixed interval, adding up to one
interval of discovery delay per update.  This bench quantifies what that
delay does to the end-to-end metric (TC1's CIL over 50k inferences) and
reports the raw discovery-delay distribution.
"""

import numpy as np

from repro.apps import get_app
from repro.core.notification import PUSH_LATENCY
from repro.core.predictor.schedules import epoch_schedule
from repro.core.transfer.strategies import CaptureMode, TransferStrategy
from repro.serving.polling import discovery_delays, expected_discovery_delay
from repro.workflow.runner import CoupledRunConfig, run_coupled
from benchmarks.conftest import emit

POLL_INTERVALS = (0.001, 0.1, 1.0, 5.0)


def run_tc1(curve, poll_interval=0.0):
    app = get_app("tc1")
    schedule = epoch_schedule(app.warmup_iters, app.total_iters, app.iters_per_epoch)
    return run_coupled(
        CoupledRunConfig(
            app=app,
            schedule=schedule,
            loss_curve=curve,
            strategy=TransferStrategy.GPU_TO_GPU,
            mode=CaptureMode.ASYNC,
            poll_interval=poll_interval,
        )
    )


def test_notification_vs_polling_cil(loss_curves, results_dir, benchmark):
    curve = loss_curves["tc1"]
    push = run_tc1(curve)
    rows = [
        "Ablation: model-update discovery (TC1, epoch interval, GPU path)",
        f"{'discovery':<14}{'CIL':>12}{'delta vs push':>15}",
        "-" * 41,
        f"{'push <1ms':<14}{push.cil:>12.1f}{0.0:>15.1f}",
    ]
    for interval in POLL_INTERVALS:
        result = run_tc1(curve, poll_interval=interval)
        rows.append(
            f"{f'poll {interval:g}s':<14}{result.cil:>12.1f}"
            f"{result.cil - push.cil:>15.1f}"
        )
        # Slower discovery can never *reduce* the CIL.
        assert result.cil >= push.cil - 1e-6
    # A coarse poll (5 s on a ~13 s update cadence) visibly hurts.
    worst = run_tc1(curve, poll_interval=POLL_INTERVALS[-1])
    assert worst.cil > push.cil
    emit(results_dir, "ablation_notification", "\n".join(rows))

    benchmark(run_tc1, curve)


def test_discovery_delay_distribution(results_dir, benchmark):
    app = get_app("tc1")
    window = app.iters_per_epoch * app.timing.t_train
    publish_times = np.arange(13) * window + 0.37  # arbitrary phase
    rows = [
        "Ablation: discovery delay per update (13 TC1 epoch checkpoints)",
        f"{'mechanism':<14}{'mean delay':>12}{'max delay':>12}",
        "-" * 38,
        f"{'push':<14}{PUSH_LATENCY:>12.4f}{PUSH_LATENCY:>12.4f}",
    ]
    for interval in POLL_INTERVALS:
        delays = benchmark.pedantic(
            discovery_delays, args=(publish_times, interval),
            rounds=1, iterations=1,
        ) if interval == POLL_INTERVALS[0] else discovery_delays(
            publish_times, interval
        )
        rows.append(
            f"{f'poll {interval:g}s':<14}{delays.mean():>12.4f}{delays.max():>12.4f}"
        )
        assert delays.max() <= interval + 1e-9
        assert PUSH_LATENCY < expected_discovery_delay(interval) + 1e-9
    emit(results_dir, "ablation_discovery_delay", "\n".join(rows))
