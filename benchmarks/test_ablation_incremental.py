"""Ablation: incremental (delta) checkpoints in a fine-tuning workflow.

The paper's related work motivates incremental/partial checkpointing
(Check-N-Run, DStore, EvoStore) for workloads where checkpoints change
only partially — exactly the fine-tuning stage of the paper's §1
workflow once the PtychoNN encoder is frozen.  This bench measures, per
update, the bytes moved and the end-to-end latency for full vs delta
checkpoints across the three transfer strategies.
"""

import numpy as np
import pytest

from repro.apps import get_app
from repro.core.transfer.incremental import (
    apply_delta,
    delta_payload_bytes,
    encode_delta,
)
from repro.core.transfer.strategies import (
    CaptureMode,
    TransferStrategy,
    compute_timings,
)
from repro.dnn.serialization import ViperSerializer, state_dict_nbytes
from repro.substrates.profiles import POLARIS
from benchmarks.conftest import emit


@pytest.fixture(scope="module")
def finetune_snapshots():
    """Two consecutive fine-tuning checkpoints with a frozen encoder."""
    app = get_app("ptychonn")
    model = app.build_model()
    model.freeze("ptycho_enc")
    x, y, _xt, _yt = app.dataset(scale=0.05, seed=12)
    model.fit(x, y, epochs=1, batch_size=64, seed=0)
    before = model.state_dict()
    model.fit(x, y, epochs=1, batch_size=64, seed=1)
    after = model.state_dict()
    return app, before, after


def test_incremental_bytes_and_latency(finetune_snapshots, results_dir, benchmark):
    app, before, after = finetune_snapshots
    delta = encode_delta(before, after, base_version=1)

    real_full = state_dict_nbytes(after)
    real_delta = delta_payload_bytes(delta)
    fraction = real_delta / real_full
    # Scale the paper-size checkpoint by the measured delta fraction.
    virtual_full = app.checkpoint_bytes
    virtual_delta = int(virtual_full * fraction)
    delta_tensors = max(1, len(delta) - 1)

    ser = ViperSerializer()
    rows = [
        "Ablation: full vs delta checkpoints (PtychoNN fine-tuning, frozen "
        "encoder)",
        f"real payload: full {real_full / 1e3:.1f} kB, delta "
        f"{real_delta / 1e3:.1f} kB ({fraction:.2%})",
        f"{'strategy':<8}{'full e2e(s)':>12}{'delta e2e(s)':>13}{'speedup':>9}",
        "-" * 42,
    ]
    for strategy in TransferStrategy:
        full_t = compute_timings(
            POLARIS, ser, strategy, CaptureMode.ASYNC,
            virtual_full, app.checkpoint_tensors,
        ).update_latency
        delta_t = compute_timings(
            POLARIS, ser, strategy, CaptureMode.ASYNC,
            virtual_delta, delta_tensors,
        ).update_latency
        rows.append(
            f"{strategy.value:<8}{full_t:>12.3f}{delta_t:>13.3f}"
            f"{full_t / delta_t:>9.2f}"
        )
        assert delta_t < full_t
    emit(results_dir, "ablation_incremental", "\n".join(rows))

    # The delta must reconstruct the exact checkpoint.
    restored = apply_delta(before, delta)
    for key in after:
        np.testing.assert_array_equal(restored[key], after[key])
    # With the encoder frozen the delta carries well under the full size.
    assert fraction < 0.8

    benchmark(encode_delta, before, after, 1)


def test_delta_roundtrip_through_serializer(finetune_snapshots, benchmark):
    _app, before, after = finetune_snapshots
    ser = ViperSerializer()
    delta = encode_delta(before, after, base_version=1)

    def roundtrip():
        return apply_delta(before, ser.loads(ser.dumps(delta)))

    restored = benchmark(roundtrip)
    for key in after:
        np.testing.assert_array_equal(restored[key], after[key])
