"""Table 1: number of checkpoints and training overhead per schedule.

Uses the same coupled runs as Figure 10 and checks the paper's shape:

- the IPP schedules take more checkpoints than the epoch baseline but
  keep the added training overhead small (seconds, not minutes);
- the adaptive schedule needs at most as many checkpoints as the
  fixed-interval schedule on the headline TC1 workload (the paper: 63
  vs 128) while achieving at least as good a CIL.
"""

import pytest

from repro.analysis.reporting import format_table1
from repro.apps import get_app
from repro.workflow.experiments import run_schedule_comparison
from benchmarks.conftest import emit


@pytest.fixture(scope="session")
def table1_results(loss_curves):
    return {
        name: run_schedule_comparison(get_app(name), loss_curves[name])
        for name in ("nt3b", "tc1", "ptychonn")
    }


def test_table1_checkpoints_and_overhead(table1_results, results_dir, benchmark):
    benchmark(format_table1, {})
    measured = {
        app: {
            sched: {"ckpts": r.checkpoints, "overhead": r.training_overhead}
            for sched, r in results.items()
        }
        for app, results in table1_results.items()
    }
    emit(results_dir, "table1_checkpoints", format_table1(measured))

    for app, per_sched in measured.items():
        base = per_sched["baseline"]
        # The IPP schedules update more often than once per epoch...
        assert per_sched["fixed"]["ckpts"] > base["ckpts"], app
        # ...and overhead scales with checkpoint count but stays small.
        for sched in ("fixed", "adaptive"):
            assert per_sched[sched]["overhead"] < 60.0, (app, sched)


def test_table1_tc1_adaptive_fewer_checkpoints_than_fixed(table1_results, benchmark):
    benchmark(lambda: table1_results["tc1"]["adaptive"].checkpoints)
    tc1 = table1_results["tc1"]
    assert tc1["adaptive"].checkpoints <= tc1["fixed"].checkpoints
    assert tc1["adaptive"].cil <= tc1["fixed"].cil


def test_table1_baseline_counts_match_epoch_geometry(table1_results, benchmark):
    benchmark(lambda: None)
    for name, results in table1_results.items():
        app = get_app(name)
        expected = app.epochs - app.warmup_epochs
        assert results["baseline"].checkpoints == expected


def test_table1_overhead_equals_ckpts_times_stall(table1_results, benchmark):
    benchmark(lambda: None)
    """Training overhead decomposes exactly into per-checkpoint stalls."""
    from repro.core.transfer.strategies import TransferStrategy
    from repro.workflow.experiments import make_cil_params

    for name, results in table1_results.items():
        app = get_app(name)
        params = make_cil_params(app, TransferStrategy.GPU_TO_GPU)
        baseline = results["baseline"]
        assert baseline.training_overhead == pytest.approx(
            baseline.checkpoints * params.t_p, rel=1e-6
        )
