"""Ablation: whole-checkpoint files vs a fine-grained tensor repository.

Paper §1: "Although there are alternative model repositories that are
optimized for fine-grain access (e.g. DStore), they still represent an
intermediate staging area that has higher overheads than direct
communication".  This bench measures both sides of that sentence on the
PtychoNN fine-tuning workload (frozen encoder):

- write path: whole files re-write the full checkpoint each version;
  the tensor repository writes only the changed tensors;
- read path: whole files ship everything; the repository lets the
  consumer fetch only the changed tensors — but pays a per-object cost
  per tensor, which is why a full cold load is slower there;
- and *both* stay well above Viper's direct GPU channel.
"""

import pytest

from repro.apps import get_app
from repro.repository import TensorRepository
from repro.core.transfer.strategies import (
    CaptureMode,
    TransferStrategy,
    compute_timings,
)
from repro.dnn.serialization import ViperSerializer, state_dict_nbytes
from repro.substrates.memory.storage import TierStore
from repro.substrates.profiles import POLARIS
from benchmarks.conftest import emit


@pytest.fixture(scope="module")
def finetune_versions():
    """Three consecutive fine-tuning snapshots with a frozen encoder."""
    app = get_app("ptychonn")
    model = app.build_model()
    model.freeze("ptycho_enc")
    x, y, _xt, _yt = app.dataset(scale=0.05, seed=21)
    versions = [model.state_dict()]
    for epoch in range(2):
        model.fit(x, y, epochs=1, batch_size=64, seed=epoch)
        versions.append(model.state_dict())
    return app, versions


def test_repository_vs_whole_files(finetune_versions, results_dir, benchmark):
    app, versions = finetune_versions
    real_full = state_dict_nbytes(versions[0])
    scale = app.checkpoint_bytes / real_full  # paper-scale virtual sizes

    repo = TensorRepository(TierStore(POLARIS.pfs), virtual_scale=scale)
    ser = ViperSerializer()

    # --- write path -------------------------------------------------------
    whole_write_costs = []
    repo_write_costs = []
    whole_store = TierStore(POLARIS.pfs)
    for i, state in enumerate(versions, start=1):
        blob = ser.dumps(state)
        # Both sides at the same tensor granularity (the model's real
        # tensor count); virtual bytes at paper scale.  The whole file
        # is one object regardless of how many tensors it contains.
        whole_write_costs.append(
            whole_store.put(
                f"m/v{i}", blob,
                virtual_bytes=ser.wire_bytes(app.checkpoint_bytes),
                nobjects=1,
            ).total
        )
        _info, cost = repo.publish("m", state)
        repo_write_costs.append(cost.total)

    # --- read path ----------------------------------------------------------
    _blob, whole_read = whole_store.get(f"m/v{len(versions)}")
    _full_state, repo_full_read = repo.get_state("m")
    _delta_state, repo_delta_read = repo.get_changed_since(
        "m", base_version=len(versions) - 1
    )

    gpu = compute_timings(
        POLARIS, ser, TransferStrategy.GPU_TO_GPU, CaptureMode.ASYNC,
        app.checkpoint_bytes, app.checkpoint_tensors,
    ).update_latency

    rows = [
        "Ablation: whole-file PFS repo vs fine-grained tensor repo "
        "(PtychoNN fine-tuning)",
        f"{'operation':<34}{'whole-file':>12}{'tensor-repo':>12}",
        "-" * 58,
        f"{'initial checkpoint write (s)':<34}{whole_write_costs[0]:>12.3f}"
        f"{repo_write_costs[0]:>12.3f}",
        f"{'incremental version write (s)':<34}{whole_write_costs[-1]:>12.3f}"
        f"{repo_write_costs[-1]:>12.3f}",
        f"{'full model cold load (s)':<34}{whole_read.total:>12.3f}"
        f"{repo_full_read.total:>12.3f}",
        f"{'partial update fetch (s)':<34}{whole_read.total:>12.3f}"
        f"{repo_delta_read.total:>12.3f}",
        "-" * 58,
        f"Viper direct GPU-to-GPU update latency: {gpu:.3f}s",
    ]
    emit(results_dir, "ablation_repository", "\n".join(rows))

    # Shape: incremental writes and partial fetches are where the
    # fine-grained repo wins ...
    assert repo_write_costs[-1] < whole_write_costs[-1]
    assert repo_delta_read.total < whole_read.total
    # ... while per-tensor overheads make its *cold* full load slower.
    assert repo_full_read.total > whole_read.total
    # And the paper's point: any repository staging loses to the direct
    # memory channel.
    assert gpu < repo_delta_read.total
    assert gpu < whole_read.total

    benchmark(repo.get_changed_since, "m", len(versions) - 1)
