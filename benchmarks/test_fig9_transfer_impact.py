"""Figure 9: impact of low-latency updates on CIL and training overhead.

TC1 at epoch-boundary update interval (216 iterations -> 13 checkpoints
after the 3-epoch warm-up), 50,000 inferences, across GPU / Host / PFS
transfer strategies.  Shape criteria from the paper:

- training overhead: GPU (~1 s) << Host << PFS (~60 s);
- CIL ordering: GPU < Host < PFS (fresher models serve more requests).
"""

import pytest

from repro.analysis.reporting import format_fig9_table
from repro.apps import get_app
from repro.workflow.experiments import run_strategy_comparison
from benchmarks.conftest import emit


@pytest.fixture(scope="module")
def fig9_results(loss_curves):
    app = get_app("tc1")
    return run_strategy_comparison(app, loss_curves["tc1"])


def test_fig9_cil_and_overhead(fig9_results, results_dir, loss_curves, benchmark):
    measured = {
        key: {"cil": r.cil, "overhead": r.training_overhead}
        for key, r in fig9_results.items()
    }
    emit(results_dir, "fig9_transfer_impact", format_fig9_table(measured))

    gpu, host, pfs = (fig9_results[k] for k in ("gpu", "host", "pfs"))
    # Same number of model updates in every configuration.
    assert gpu.checkpoints == host.checkpoints == pfs.checkpoints == 13
    # Training overhead ordering and bands.
    assert gpu.training_overhead < host.training_overhead < pfs.training_overhead
    assert gpu.training_overhead < 2.5            # paper: ~1 s
    assert 40.0 < pfs.training_overhead < 80.0    # paper: ~60 s
    # CIL ordering: faster delivery -> lower cumulative inference loss.
    assert gpu.cil < pfs.cil
    assert host.cil <= pfs.cil

    app = get_app("tc1")
    benchmark(run_strategy_comparison, app, loss_curves["tc1"])


def test_fig9_every_inference_accounted(fig9_results, benchmark):
    from repro.workflow.consumer import cil_from_switches

    for result in fig9_results.values():
        assert result.per_version_inferences.sum() == result.inferences == 50_000
    gpu = fig9_results["gpu"]
    benchmark(cil_from_switches, gpu.switches, 0.005, 50_000)
