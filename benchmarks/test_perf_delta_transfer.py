"""Perf benchmark + regression gates for the delta wire path.

Two questions, answered with real bytes and the simulated timing law:

1. **Bytes on the wire** — serialize a payload, mutate a fraction of its
   tensors, and measure the *actual* encoded frame size against the full
   blob.  The acceptance gate: a 10%-changed update moves >= 3x fewer
   bytes than the monolithic path.
2. **Update latency** — drive the same scenario through the Viper facade
   at paper scale (virtual descriptors) and compare end-to-end simulated
   update latency with the delta path on vs off.  Gates: measurably
   faster when 10% changed; within 5% of monolithic when 100% changed
   (the fallback must not regress the worst case).

Wall-clock encode/decode throughput is reported (not gated) so a codec
or digest regression shows up in the JSON history.

Outputs ``benchmarks/results/BENCH_delta.json``.  ``VIPER_PERF_QUICK=1``
shrinks the real payload for the CI smoke job.
"""

import json
import os
import time

import numpy as np
import pytest

from repro import CaptureMode, TransferStrategy, Viper
from repro.apps import get_app
from repro.core.transfer.compression import get_codec
from repro.core.transfer.delta import ChunkIndex, decode_frame, encode_frame
from repro.dnn.serialization import ViperSerializer
from repro.substrates.cost import MB

QUICK = os.environ.get("VIPER_PERF_QUICK", "") not in ("", "0")

REAL_PAYLOAD_BYTES = 8 * MB if QUICK else 64 * MB
N_TENSORS = 20
CHUNK_BYTES = 64 * 1024

#: The acceptance gates.
MIN_WIRE_REDUCTION_10PCT = 3.0   # >= 3x fewer bytes, 10% changed
MAX_LATENCY_REGRESSION = 1.05    # <= 5% slower, 100% changed (fallback)


def build_state(seed=9):
    rng = np.random.default_rng(seed)
    per = max(1, REAL_PAYLOAD_BYTES // N_TENSORS // 4)
    return {
        f"layer{i}/W": rng.standard_normal(per).astype(np.float32)
        for i in range(N_TENSORS)
    }


def mutate(state, fraction, seed=10):
    """Return a copy with ``fraction`` of the tensors fully rewritten."""
    rng = np.random.default_rng(seed)
    n_changed = max(1, int(round(fraction * len(state))))
    out = {k: v.copy() for k, v in state.items()}
    for key in list(out)[:n_changed]:
        out[key] = rng.standard_normal(out[key].shape).astype(np.float32)
    return out


def measure_wire(fraction: float, compression: str = "none") -> dict:
    """Real encoded-frame bytes for a ``fraction``-changed update."""
    ser = ViperSerializer()
    base_state = build_state()
    new_state = mutate(base_state, fraction)
    base_blob = ser.dumps(base_state)
    base_lengths = [memoryview(p).nbytes for p in ser.dump_chunks(base_state)]
    index = ChunkIndex(base_blob, CHUNK_BYTES, base_lengths)
    codec = get_codec(compression)

    t0 = time.perf_counter()
    frame, stats = encode_frame(
        index, ser.dump_chunks(new_state), CHUNK_BYTES, codec
    )
    encode_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    out = decode_frame(frame, base_blob)
    decode_s = time.perf_counter() - t0
    assert out == ser.dumps(new_state)  # the benchmark never ships garbage

    full = stats.bytes_total
    wire = min(len(frame), full)  # the handler falls back when frame >= full
    return {
        "changed_fraction": fraction,
        "compression": compression,
        "full_bytes": full,
        "wire_bytes": wire,
        "reduction_x": full / wire,
        "dedup_hit_ratio": round(stats.dedup_hit_ratio, 4),
        "encode_mbps": round(full / max(encode_s, 1e-9) / MB, 1),
        "decode_mbps": round(full / max(decode_s, 1e-9) / MB, 1),
    }


def simulated_latency(app_name: str, fraction: float, delta: bool) -> float:
    """End-to-end simulated update latency through the Viper facade."""
    app = get_app(app_name)
    state = build_state()
    kwargs = dict(
        mode=CaptureMode.SYNC,
        strategy=TransferStrategy.HOST_TO_HOST,
        virtual_bytes=app.checkpoint_bytes,
        virtual_tensors=app.checkpoint_tensors,
    )
    with Viper(delta=delta) as viper:
        viper.save_weights("bench", state, **kwargs)
        viper.load_weights("bench")  # register the consumer-held base
        changed = mutate(state, fraction)
        result = viper.save_weights("bench", changed, **kwargs)
        load = viper.load_weights("bench")
        # Exact bytes either way: the speed never costs correctness.
        for key in changed:
            np.testing.assert_array_equal(load.state[key], changed[key])
    return result.update_latency


APPS = ("nt3a",) if QUICK else ("nt3a", "tc1")


@pytest.fixture(scope="module")
def bench_results(results_dir):
    wire_rows = [
        measure_wire(0.1),
        measure_wire(0.5),
        measure_wire(1.0),
        measure_wire(0.1, compression="zlib"),
    ]
    latency = {}
    for name in APPS:
        latency[name] = {
            "mono_10pct_s": simulated_latency(name, 0.1, delta=False),
            "delta_10pct_s": simulated_latency(name, 0.1, delta=True),
            "mono_100pct_s": simulated_latency(name, 1.0, delta=False),
            "delta_100pct_s": simulated_latency(name, 1.0, delta=True),
        }
    report = {
        "quick": QUICK,
        "real_payload_bytes": REAL_PAYLOAD_BYTES,
        "chunk_bytes": CHUNK_BYTES,
        "wire": wire_rows,
        "simulated_latency": latency,
    }
    path = results_dir / "BENCH_delta.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    lines = ["Delta wire path: bytes moved per update (real payload)"]
    for row in wire_rows:
        lines.append(
            f"  {row['changed_fraction'] * 100:5.0f}% changed"
            f" [{row['compression']:4s}]  "
            f"{row['full_bytes'] / MB:6.1f} MB -> "
            f"{row['wire_bytes'] / MB:6.1f} MB   "
            f"({row['reduction_x']:.1f}x)"
        )
    print("\n" + "\n".join(lines))
    return report


class TestBytesOnWire:
    def test_10pct_change_moves_3x_fewer_bytes(self, bench_results):
        row = bench_results["wire"][0]
        assert row["changed_fraction"] == 0.1
        assert row["reduction_x"] >= MIN_WIRE_REDUCTION_10PCT

    def test_full_change_never_ships_more_than_monolithic(self, bench_results):
        for row in bench_results["wire"]:
            assert row["wire_bytes"] <= row["full_bytes"]

    def test_compression_stacks_on_dedup(self, bench_results):
        plain = bench_results["wire"][0]
        compressed = bench_results["wire"][3]
        # Random float payloads barely compress; the codec must at least
        # never cost wire bytes on top of the dedup win.
        assert compressed["wire_bytes"] <= plain["wire_bytes"] * 1.01


class TestSimulatedLatency:
    def test_10pct_change_is_measurably_faster(self, bench_results):
        for name, row in bench_results["simulated_latency"].items():
            assert row["delta_10pct_s"] < row["mono_10pct_s"] * 0.95, name

    def test_100pct_change_within_5pct_of_monolithic(self, bench_results):
        for name, row in bench_results["simulated_latency"].items():
            assert (
                row["delta_100pct_s"]
                <= row["mono_100pct_s"] * MAX_LATENCY_REGRESSION
            ), name
